//! Integration tests driving the real `passive-outage` binary.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_passive-outage"))
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("passive-outage-test-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn full_pipeline_through_the_binary() {
    let dir = tmpdir("pipeline");
    let obs = dir.join("obs.txt");
    let truth = dir.join("truth.txt");
    let events = dir.join("events.txt");

    let out = bin()
        .args([
            "simulate",
            "--preset",
            "quick",
            "--seed",
            "3",
            "--num-as",
            "30",
            "--out",
            obs.to_str().unwrap(),
            "--truth",
            truth.to_str().unwrap(),
        ])
        .output()
        .expect("spawn simulate");
    assert!(
        out.status.success(),
        "simulate: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(obs.exists() && truth.exists());

    let out = bin()
        .args([
            "detect",
            "--obs",
            obs.to_str().unwrap(),
            "--out",
            events.to_str().unwrap(),
        ])
        .output()
        .expect("spawn detect");
    assert!(
        out.status.success(),
        "detect: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let summary = String::from_utf8_lossy(&out.stderr);
    assert!(summary.contains("blocks covered"), "{summary}");

    let out = bin()
        .args([
            "eval",
            "--observed",
            events.to_str().unwrap(),
            "--truth",
            truth.to_str().unwrap(),
            "--window",
            "86400",
        ])
        .output()
        .expect("spawn eval");
    assert!(
        out.status.success(),
        "eval: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let table = String::from_utf8_lossy(&out.stdout);
    assert!(table.contains("Precision"), "{table}");

    let out = bin()
        .args(["coverage", "--obs", obs.to_str().unwrap()])
        .output()
        .expect("spawn coverage");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("bin-width-secs"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fault_plan_sentinel_and_exclusion_flags() {
    let dir = tmpdir("faults");
    let obs = dir.join("obs.txt");
    let plan = dir.join("plan.txt");
    let events = dir.join("events.txt");
    let quarantine = dir.join("quarantine.txt");

    // Synthetic steady feed: 4 blocks, one query each every 10 s, 2 days.
    let mut doc = String::from("# synthetic\n");
    for t in (0..2 * 86_400).step_by(10) {
        for b in 0..4 {
            doc.push_str(&format!("{t} 10.0.{b}.0/24\n"));
        }
    }
    std::fs::write(&obs, doc).unwrap();
    std::fs::write(&plan, "seed 7\nblackout 120000 121800\n").unwrap();

    let out = bin()
        .args([
            "detect",
            "--obs",
            obs.to_str().unwrap(),
            "--fault-plan",
            plan.to_str().unwrap(),
            "--sentinel",
            "--out",
            events.to_str().unwrap(),
            "--quarantine-out",
            quarantine.to_str().unwrap(),
        ])
        .output()
        .expect("spawn detect with faults");
    assert!(
        out.status.success(),
        "detect: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let summary = String::from_utf8_lossy(&out.stderr);
    assert!(summary.contains("faults:"), "{summary}");
    assert!(summary.contains("quarantined"), "{summary}");
    let qdoc = std::fs::read_to_string(&quarantine).unwrap();
    assert!(
        qdoc.lines()
            .any(|l| !l.trim().is_empty() && !l.starts_with('#')),
        "quarantine file should list the blackout: {qdoc}"
    );

    // The quarantine file round-trips as an eval exclusion.
    let truth = dir.join("truth.txt");
    std::fs::write(&truth, "# no outages\n").unwrap();
    let out = bin()
        .args([
            "eval",
            "--observed",
            events.to_str().unwrap(),
            "--truth",
            truth.to_str().unwrap(),
            "--window",
            "172800",
            "--exclude",
            quarantine.to_str().unwrap(),
        ])
        .output()
        .expect("spawn eval with exclusion");
    assert!(
        out.status.success(),
        "eval: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("excluded"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn metrics_trace_and_status_through_the_binary() {
    let dir = tmpdir("metrics");
    let obs = dir.join("obs.txt");
    let plan = dir.join("plan.txt");
    let metrics = dir.join("metrics.prom");
    let trace = dir.join("trace.jsonl");

    let mut doc = String::from("# synthetic\n");
    for t in (0..2 * 86_400).step_by(10) {
        for b in 0..4 {
            doc.push_str(&format!("{t} 10.0.{b}.0/24\n"));
        }
    }
    std::fs::write(&obs, doc).unwrap();
    std::fs::write(&plan, "seed 7\nblackout 120000 121800\n").unwrap();

    let out = bin()
        .args([
            "detect",
            "--obs",
            obs.to_str().unwrap(),
            "--fault-plan",
            plan.to_str().unwrap(),
            "--sentinel",
            "--out",
            dir.join("events.txt").to_str().unwrap(),
            "--metrics-out",
            metrics.to_str().unwrap(),
            "--trace-out",
            trace.to_str().unwrap(),
        ])
        .output()
        .expect("spawn detect with metrics");
    assert!(
        out.status.success(),
        "detect: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Metrics snapshot parses as Prometheus text and holds the headline
    // families the run must have exercised.
    let text = std::fs::read_to_string(&metrics).unwrap();
    let snap = outage_obs::parse_prometheus(&text).expect("valid Prometheus text");
    assert!(snap.sum("po_detect_arrivals_total") > 0.0, "{text}");
    assert!(snap.sum("po_sentinel_transitions_total") > 0.0, "{text}");
    assert!(snap.sum("po_worker_busy_seconds_total") > 0.0, "{text}");
    assert_eq!(
        snap.type_of("po_quarantine_duration_seconds"),
        Some("histogram")
    );

    // The trace is JSONL with one record per span.
    let jsonl = std::fs::read_to_string(&trace).unwrap();
    assert!(jsonl.lines().count() >= 3, "{jsonl}");
    assert!(jsonl.contains("\"span\":\"learn\""), "{jsonl}");

    // `status` renders a health summary from the snapshot.
    let out = bin()
        .args(["status", metrics.to_str().unwrap()])
        .output()
        .expect("spawn status");
    assert!(
        out.status.success(),
        "status: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let rendered = String::from_utf8_lossy(&out.stdout);
    assert!(rendered.contains("feed sentinel"), "{rendered}");
    assert!(rendered.contains("quarantine"), "{rendered}");
    assert!(rendered.contains("detection"), "{rendered}");

    // And fails loudly without its positional argument.
    let out = bin().arg("status").output().unwrap();
    assert_eq!(out.status.code(), Some(2));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn invalid_sentinel_config_gets_a_real_error_message() {
    let dir = tmpdir("badsentinel");
    let obs = dir.join("obs.txt");
    std::fs::write(&obs, "100 10.0.0.0/24\n200 10.0.0.0/24\n").unwrap();
    let out = bin()
        .args([
            "detect",
            "--obs",
            obs.to_str().unwrap(),
            "--sentinel-bucket",
            "0",
            "--out",
            dir.join("events.txt").to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("error:") && stderr.contains("invalid detector configuration"),
        "{stderr}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn telescope_command_prints_breakdown() {
    let out = bin()
        .args([
            "telescope",
            "--preset",
            "quick",
            "--num-as",
            "20",
            "--seed",
            "3",
            "--corrupt",
            "0.3",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let line = String::from_utf8_lossy(&out.stdout);
    assert!(
        line.contains("accepted") && line.contains("malformed"),
        "{line}"
    );
}

#[test]
fn learn_verify_warm_detect_and_merge_through_the_binary() {
    let dir = tmpdir("model");
    let obs = dir.join("obs.txt");
    let model = dir.join("model.poms");
    let cold_events = dir.join("cold.txt");
    let warm_events = dir.join("warm.txt");

    let out = bin()
        .args([
            "simulate",
            "--preset",
            "quick",
            "--seed",
            "9",
            "--num-as",
            "30",
            "--out",
            obs.to_str().unwrap(),
        ])
        .output()
        .expect("spawn simulate");
    assert!(
        out.status.success(),
        "simulate: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // learn → checkpoint on disk
    let out = bin()
        .args([
            "learn",
            "--obs",
            obs.to_str().unwrap(),
            "--window",
            "86400",
            "--model-out",
            model.to_str().unwrap(),
        ])
        .output()
        .expect("spawn learn");
    assert!(
        out.status.success(),
        "learn: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("fingerprint"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(model.exists());

    // verify + inspect accept the checkpoint
    let out = bin()
        .args(["model", "verify", model.to_str().unwrap()])
        .output()
        .expect("spawn model verify");
    assert!(
        out.status.success(),
        "verify: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).starts_with("ok: "));
    let out = bin()
        .args(["model", "inspect", model.to_str().unwrap()])
        .output()
        .expect("spawn model inspect");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("blocks"));

    // cold detect vs warm detect from the checkpoint: identical events
    let out = bin()
        .args([
            "detect",
            "--obs",
            obs.to_str().unwrap(),
            "--window",
            "86400",
            "--out",
            cold_events.to_str().unwrap(),
        ])
        .output()
        .expect("spawn cold detect");
    assert!(out.status.success());
    let out = bin()
        .args([
            "detect",
            "--obs",
            obs.to_str().unwrap(),
            "--window",
            "86400",
            "--model",
            model.to_str().unwrap(),
            "--out",
            warm_events.to_str().unwrap(),
        ])
        .output()
        .expect("spawn warm detect");
    assert!(
        out.status.success(),
        "warm detect: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("warm start"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let cold = std::fs::read_to_string(&cold_events).unwrap();
    let warm = std::fs::read_to_string(&warm_events).unwrap();
    assert_eq!(cold, warm, "warm start changed the event document");

    // merge: a checkpoint merged with itself doubles the counts and
    // still verifies; --model with --model-out is refused.
    let merged = dir.join("merged.poms");
    let out = bin()
        .args([
            "model",
            "merge",
            model.to_str().unwrap(),
            model.to_str().unwrap(),
            "--out",
            merged.to_str().unwrap(),
        ])
        .output()
        .expect("spawn model merge");
    assert!(
        out.status.success(),
        "merge: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = bin()
        .args(["model", "verify", merged.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());

    let out = bin()
        .args([
            "detect",
            "--obs",
            obs.to_str().unwrap(),
            "--model",
            model.to_str().unwrap(),
            "--model-out",
            dir.join("again.poms").to_str().unwrap(),
            "--out",
            dir.join("events.txt").to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("mutually exclusive"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // corrupt checkpoint → typed error through the binary
    let mut bytes = std::fs::read(&model).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    std::fs::write(&model, &bytes).unwrap();
    let out = bin()
        .args(["model", "verify", model.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("model checkpoint"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn helpful_errors_and_exit_codes() {
    // no command
    let out = bin().output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));

    // unknown command
    let out = bin().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());

    // missing required flag
    let out = bin().args(["detect", "--obs"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("needs a value"));

    // missing file
    let out = bin()
        .args([
            "detect",
            "--obs",
            "/nonexistent/x.txt",
            "--out",
            "/tmp/y.txt",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());

    // help succeeds
    let out = bin().arg("--help").output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("simulate"));
}
