//! The `passive-outage` command-line tool. Run with `--help` for usage.

use outage_cli::commands;
use outage_core::SentinelConfig;
use outage_netsim::FaultPlan;
use outage_types::IntervalSet;
use std::collections::HashMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(cmd) = args.first() else {
        return Err(usage());
    };
    // `status` and `model` take positional paths; everything else is
    // flag-only.
    if cmd == "status" {
        return cmd_status(&args[1..]);
    }
    if cmd == "model" {
        return cmd_model(&args[1..]);
    }
    let flags = parse_flags(&args[1..])?;
    match cmd.as_str() {
        "simulate" => cmd_simulate(&flags),
        "detect" => cmd_detect(&flags),
        "learn" => cmd_learn(&flags),
        "eval" => cmd_eval(&flags),
        "coverage" => cmd_coverage(&flags),
        "telescope" => cmd_telescope(&flags),
        "--help" | "-h" | "help" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{}", usage())),
    }
}

fn usage() -> String {
    "usage: passive-outage <command> [flags]\n\
     \n\
     commands:\n\
     \x20 simulate  --preset <quick|table1|table3|tradeoff|ipv6-day>\n\
     \x20           [--num-as N] [--seed S] --out FILE [--truth FILE]\n\
     \x20 detect    --obs FILE [--window SECS] --out FILE\n\
     \x20           [--fault-plan FILE] [--sentinel] [--sentinel-bucket SECS]\n\
     \x20           [--quarantine-out FILE] [--workers N | --streaming]\n\
     \x20           [--metrics-out FILE] [--trace-out FILE]\n\
     \x20           [--model FILE | --model-out FILE]\n\
     \x20 learn     --obs FILE --model-out FILE [--window SECS] [--workers N]\n\
     \x20 model     inspect FILE | verify FILE | merge A B --out FILE\n\
     \x20 status    METRICS-FILE   (a --metrics-out snapshot)\n\
     \x20 eval      --observed FILE --truth FILE --window SECS\n\
     \x20           [--min-secs N] [--events] [--tolerance SECS] [--exclude FILE]\n\
     \x20 coverage  --obs FILE\n\
     \x20 telescope [--preset P] [--num-as N] [--seed S] [--corrupt PROB]"
        .to_string()
}

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let Some(name) = a.strip_prefix("--") else {
            return Err(format!("unexpected argument {a:?}"));
        };
        // boolean flags
        if name == "events" || name == "sentinel" || name == "streaming" {
            flags.insert(name.to_string(), "true".to_string());
            continue;
        }
        let Some(value) = it.next() else {
            return Err(format!("flag --{name} needs a value"));
        };
        flags.insert(name.to_string(), value.clone());
    }
    Ok(flags)
}

fn get_u64(flags: &HashMap<String, String>, name: &str, default: u64) -> Result<u64, String> {
    match flags.get(name) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|e| format!("--{name} {v:?}: {e}")),
    }
}

fn required<'a>(flags: &'a HashMap<String, String>, name: &str) -> Result<&'a str, String> {
    flags
        .get(name)
        .map(String::as_str)
        .ok_or_else(|| format!("missing required flag --{name}"))
}

fn read(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))
}

fn write(path: &str, contents: &str) -> Result<(), String> {
    std::fs::write(path, contents).map_err(|e| format!("writing {path}: {e}"))
}

/// Crash-safe write for operational artifacts (metrics, traces, model
/// checkpoints): a reader — or a `status` invocation — must never see a
/// half-written snapshot.
fn write_atomic(path: &str, contents: &[u8]) -> Result<(), String> {
    outage_store::atomic_write(std::path::Path::new(path), contents)
        .map_err(|e| format!("writing {path}: {e}"))
}

fn read_bytes(path: &str) -> Result<Vec<u8>, String> {
    std::fs::read(path).map_err(|e| format!("reading {path}: {e}"))
}

fn cmd_simulate(flags: &HashMap<String, String>) -> Result<(), String> {
    let preset = flags.get("preset").map(String::as_str).unwrap_or("quick");
    let num_as = get_u64(flags, "num-as", 120)? as u32;
    let seed = get_u64(flags, "seed", 42)?;
    let out = required(flags, "out")?;
    let result = commands::simulate(preset, num_as, seed).map_err(|e| e.to_string())?;
    write(out, &result.observations)?;
    if let Some(truth_path) = flags.get("truth") {
        write(truth_path, &result.truth)?;
    }
    eprintln!("{}", result.summary);
    Ok(())
}

fn cmd_detect(flags: &HashMap<String, String>) -> Result<(), String> {
    let obs = read(required(flags, "obs")?)?;
    let window = flags
        .get("window")
        .map(|v| v.parse::<u64>().map_err(|e| format!("--window: {e}")))
        .transpose()?;
    let out = required(flags, "out")?;
    let fault_plan = flags
        .get("fault-plan")
        .map(|path| {
            let text = read(path)?;
            FaultPlan::parse(&text).map_err(|e| format!("fault plan {path}: {e}"))
        })
        .transpose()?;
    // --sentinel-bucket implies --sentinel; the value is validated by the
    // detector's config machinery, not here, so a bad one surfaces as a
    // proper configuration error.
    let sentinel = if flags.contains_key("sentinel") || flags.contains_key("sentinel-bucket") {
        let mut cfg = SentinelConfig::default();
        if let Some(v) = flags.get("sentinel-bucket") {
            cfg.bucket_secs = v.parse().map_err(|e| format!("--sentinel-bucket: {e}"))?;
        }
        Some(cfg)
    } else {
        None
    };
    // Default (no flag) is available parallelism, decided in detect_with.
    let workers = flags
        .get("workers")
        .map(|v| match v.parse::<usize>() {
            Ok(n) if n >= 1 => Ok(n),
            Ok(_) => Err("--workers must be at least 1".to_string()),
            Err(e) => Err(format!("--workers {v:?}: {e}")),
        })
        .transpose()?;
    if flags.contains_key("model") && flags.contains_key("model-out") {
        return Err(
            "--model and --model-out are mutually exclusive (warm start vs save-after-learn)"
                .to_string(),
        );
    }
    let model = flags.get("model").map(|p| read_bytes(p)).transpose()?;
    let opts = commands::DetectOptions {
        window_secs: window,
        fault_plan,
        sentinel,
        workers,
        streaming: flags.contains_key("streaming"),
        trace: flags.contains_key("trace-out"),
        model,
        model_out: flags.contains_key("model-out"),
    };
    let result = commands::detect_with(&obs, &opts).map_err(|e| e.to_string())?;
    write(out, &result.events)?;
    if let Some(qpath) = flags.get("quarantine-out") {
        write(qpath, &result.quarantine)?;
    }
    if let Some(mpath) = flags.get("metrics-out") {
        write_atomic(mpath, result.metrics.as_bytes())?;
    }
    if let Some(tpath) = flags.get("trace-out") {
        write_atomic(tpath, result.trace.as_deref().unwrap_or("").as_bytes())?;
    }
    if let Some(mpath) = flags.get("model-out") {
        write_atomic(mpath, result.model.as_deref().unwrap_or(&[]))?;
    }
    eprintln!("{}", result.summary);
    Ok(())
}

fn cmd_learn(flags: &HashMap<String, String>) -> Result<(), String> {
    let obs = read(required(flags, "obs")?)?;
    let window = flags
        .get("window")
        .map(|v| v.parse::<u64>().map_err(|e| format!("--window: {e}")))
        .transpose()?;
    let workers = flags
        .get("workers")
        .map(|v| {
            v.parse::<usize>()
                .map_err(|e| format!("--workers {v:?}: {e}"))
        })
        .transpose()?;
    let out = required(flags, "model-out")?;
    let result = commands::learn(&obs, window, workers).map_err(|e| e.to_string())?;
    write_atomic(out, &result.model)?;
    eprintln!("{}", result.summary);
    Ok(())
}

fn cmd_model(args: &[String]) -> Result<(), String> {
    const USAGE: &str =
        "usage: passive-outage model inspect FILE | verify FILE | merge A B --out FILE";
    let Some(action) = args.first() else {
        return Err(USAGE.to_string());
    };
    match action.as_str() {
        "inspect" => {
            let [_, path] = args else {
                return Err(USAGE.to_string());
            };
            let rendered =
                commands::model_inspect(&read_bytes(path)?).map_err(|e| e.to_string())?;
            print!("{rendered}");
            Ok(())
        }
        "verify" => {
            let [_, path] = args else {
                return Err(USAGE.to_string());
            };
            let line = commands::model_verify(&read_bytes(path)?).map_err(|e| e.to_string())?;
            println!("{line}");
            Ok(())
        }
        "merge" => {
            let [_, a, b, rest @ ..] = args else {
                return Err(USAGE.to_string());
            };
            let flags = parse_flags(rest)?;
            let out = required(&flags, "out")?;
            let (bytes, summary) = commands::model_merge(&read_bytes(a)?, &read_bytes(b)?)
                .map_err(|e| e.to_string())?;
            write_atomic(out, &bytes)?;
            eprintln!("{summary}");
            Ok(())
        }
        other => Err(format!("unknown model action {other:?}\n{USAGE}")),
    }
}

fn cmd_status(args: &[String]) -> Result<(), String> {
    let [path] = args else {
        return Err("usage: passive-outage status METRICS-FILE".to_string());
    };
    let snapshot = read(path)?;
    let summary = commands::status(&snapshot).map_err(|e| e.to_string())?;
    print!("{summary}");
    Ok(())
}

fn cmd_eval(flags: &HashMap<String, String>) -> Result<(), String> {
    let observed = read(required(flags, "observed")?)?;
    let truth = read(required(flags, "truth")?)?;
    let window = get_u64(flags, "window", 86_400)?;
    let min_secs = get_u64(flags, "min-secs", 0)?;
    let tolerance = get_u64(flags, "tolerance", 180)?;
    let event_mode = flags.contains_key("events");
    let excluded = match flags.get("exclude") {
        None => IntervalSet::new(),
        Some(path) => {
            let text = read(path)?;
            outage_cli::format::parse_intervals(&text)
                .map_err(|e| format!("exclusions {path}: {e}"))?
        }
    };
    let table = commands::eval(
        &observed, &truth, window, min_secs, event_mode, tolerance, &excluded,
    )
    .map_err(|e| e.to_string())?;
    println!("{table}");
    Ok(())
}

fn cmd_coverage(flags: &HashMap<String, String>) -> Result<(), String> {
    let obs = read(required(flags, "obs")?)?;
    let table = commands::coverage(&obs).map_err(|e| e.to_string())?;
    println!("{table}");
    Ok(())
}

fn cmd_telescope(flags: &HashMap<String, String>) -> Result<(), String> {
    let preset = flags.get("preset").map(String::as_str).unwrap_or("quick");
    let num_as = get_u64(flags, "num-as", 40)? as u32;
    let seed = get_u64(flags, "seed", 42)?;
    let corrupt = match flags.get("corrupt") {
        None => 0.0,
        Some(v) => v.parse().map_err(|e| format!("--corrupt {v:?}: {e}"))?,
    };
    let line = commands::telescope(preset, num_as, seed, corrupt).map_err(|e| e.to_string())?;
    println!("{line}");
    Ok(())
}
