//! The `passive-outage` command-line tool. Run with `--help` for usage.

use outage_cli::commands;
use outage_core::service::{install_shutdown_handlers, shutdown_flag};
use outage_core::SentinelConfig;
use outage_netsim::FaultPlan;
use outage_types::IntervalSet;
use std::collections::HashMap;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(cmd) = args.first() else {
        return Err(usage());
    };
    // `status` and `model` take positional paths; everything else is
    // flag-only.
    if cmd == "status" {
        return cmd_status(&args[1..]);
    }
    if cmd == "model" {
        return cmd_model(&args[1..]);
    }
    if cmd == "explain" {
        return cmd_explain(&args[1..]);
    }
    let flags = parse_flags(&args[1..])?;
    match cmd.as_str() {
        "simulate" => cmd_simulate(&flags),
        "detect" => cmd_detect(&flags),
        "federate" => cmd_federate(&flags),
        "serve" => cmd_serve(&flags),
        "learn" => cmd_learn(&flags),
        "eval" => cmd_eval(&flags),
        "coverage" => cmd_coverage(&flags),
        "telescope" => cmd_telescope(&flags),
        "--help" | "-h" | "help" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{}", usage())),
    }
}

fn usage() -> String {
    "usage: passive-outage <command> [flags]\n\
     \n\
     commands:\n\
     \x20 simulate  --preset <quick|table1|table3|tradeoff|ipv6-day>\n\
     \x20           [--num-as N] [--seed S] --out FILE [--truth FILE]\n\
     \x20 detect    --obs FILE [--window SECS] --out FILE\n\
     \x20           [--fault-plan FILE] [--sentinel] [--sentinel-bucket SECS]\n\
     \x20           [--quarantine-out FILE] [--workers N | --streaming]\n\
     \x20           [--metrics-out FILE] [--trace-out FILE]\n\
     \x20           [--model FILE | --model-out FILE]\n\
     \x20           [--evidence off|full|sampled:N] [--evidence-out FILE]\n\
     \x20 federate  --obs FILE --out FILE [--window SECS]\n\
     \x20           [--vantages N] [--overlap FRAC] [--fusion union|quorum:K]\n\
     \x20           [--sentinel] [--sentinel-bucket SECS]\n\
     \x20           [--fault-plan FILE [--fault-vantage V]]\n\
     \x20           [--attribution-out FILE] [--metrics-out FILE] [--model-out FILE]\n\
     \x20 explain   EVENT-ID (--evidence FILE | --url http://HOST:PORT) [--json]\n\
     \x20 serve     [--preset P | --obs FILE] [--num-as N] [--seed S]\n\
     \x20           [--accel X] [--epoch SECS] [--listen ADDR] [--port-file FILE]\n\
     \x20           [--checkpoint FILE] [--checkpoint-every-rolls N] [--resume]\n\
     \x20           [--events-out FILE] [--metrics-out FILE] [--until SECS]\n\
     \x20           [--sentinel] [--sentinel-bucket SECS] [--fault-plan FILE]\n\
     \x20           [--webhook URL] [--webhook-rate R] [--webhook-burst N]\n\
     \x20           [--queue-capacity N] [--evidence off|full|sampled:N]\n\
     \x20           [--vantages N]   (federated: one engine per vantage)\n\
     \x20 learn     --obs FILE --model-out FILE [--window SECS] [--workers N]\n\
     \x20 model     inspect FILE | verify FILE | merge A B --out FILE\n\
     \x20 status    METRICS-FILE   (a --metrics-out snapshot)\n\
     \x20 eval      --observed FILE --truth FILE --window SECS\n\
     \x20           [--min-secs N] [--events] [--tolerance SECS] [--exclude FILE]\n\
     \x20 coverage  --obs FILE\n\
     \x20 telescope [--preset P] [--num-as N] [--seed S] [--corrupt PROB]"
        .to_string()
}

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let Some(name) = a.strip_prefix("--") else {
            return Err(format!("unexpected argument {a:?}"));
        };
        // boolean flags
        if name == "events"
            || name == "sentinel"
            || name == "streaming"
            || name == "resume"
            || name == "json"
        {
            flags.insert(name.to_string(), "true".to_string());
            continue;
        }
        let Some(value) = it.next() else {
            return Err(format!("flag --{name} needs a value"));
        };
        flags.insert(name.to_string(), value.clone());
    }
    Ok(flags)
}

fn get_u64(flags: &HashMap<String, String>, name: &str, default: u64) -> Result<u64, String> {
    match flags.get(name) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|e| format!("--{name} {v:?}: {e}")),
    }
}

fn get_f64(flags: &HashMap<String, String>, name: &str, default: f64) -> Result<f64, String> {
    match flags.get(name) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|e| format!("--{name} {v:?}: {e}")),
    }
}

/// `--sentinel` / `--sentinel-bucket` shared by `detect` and `serve`.
/// `--sentinel-bucket` implies `--sentinel`; the value is validated by
/// the detector's config machinery, not here, so a bad one surfaces as
/// a proper configuration error.
fn parse_sentinel(flags: &HashMap<String, String>) -> Result<Option<SentinelConfig>, String> {
    if !flags.contains_key("sentinel") && !flags.contains_key("sentinel-bucket") {
        return Ok(None);
    }
    let mut cfg = SentinelConfig::default();
    if let Some(v) = flags.get("sentinel-bucket") {
        cfg.bucket_secs = v.parse().map_err(|e| format!("--sentinel-bucket: {e}"))?;
    }
    Ok(Some(cfg))
}

/// `--fault-plan FILE`, shared by `detect` and `serve`.
fn parse_fault_plan(flags: &HashMap<String, String>) -> Result<Option<FaultPlan>, String> {
    flags
        .get("fault-plan")
        .map(|path| {
            let text = read(path)?;
            FaultPlan::parse(&text).map_err(|e| format!("fault plan {path}: {e}"))
        })
        .transpose()
}

/// `--evidence TIER` shared by `detect` and `serve`: `off` (default),
/// `full`, or `sampled:N` (one unit in N, stable across worker counts).
fn parse_evidence(flags: &HashMap<String, String>) -> Result<outage_core::EvidenceConfig, String> {
    match flags.get("evidence") {
        None => Ok(outage_core::EvidenceConfig::Off),
        Some(v) => outage_core::EvidenceConfig::parse(v)
            .ok_or_else(|| format!("--evidence {v:?}: expected off, full, or sampled:N")),
    }
}

fn required<'a>(flags: &'a HashMap<String, String>, name: &str) -> Result<&'a str, String> {
    flags
        .get(name)
        .map(String::as_str)
        .ok_or_else(|| format!("missing required flag --{name}"))
}

fn read(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))
}

fn write(path: &str, contents: &str) -> Result<(), String> {
    std::fs::write(path, contents).map_err(|e| format!("writing {path}: {e}"))
}

/// Crash-safe write for operational artifacts (metrics, traces, model
/// checkpoints): a reader — or a `status` invocation — must never see a
/// half-written snapshot.
fn write_atomic(path: &str, contents: &[u8]) -> Result<(), String> {
    outage_store::atomic_write(std::path::Path::new(path), contents)
        .map_err(|e| format!("writing {path}: {e}"))
}

fn read_bytes(path: &str) -> Result<Vec<u8>, String> {
    std::fs::read(path).map_err(|e| format!("reading {path}: {e}"))
}

fn cmd_simulate(flags: &HashMap<String, String>) -> Result<(), String> {
    let preset = flags.get("preset").map(String::as_str).unwrap_or("quick");
    let num_as = get_u64(flags, "num-as", 120)? as u32;
    let seed = get_u64(flags, "seed", 42)?;
    let out = required(flags, "out")?;
    let result = commands::simulate(preset, num_as, seed).map_err(|e| e.to_string())?;
    write(out, &result.observations)?;
    if let Some(truth_path) = flags.get("truth") {
        write(truth_path, &result.truth)?;
    }
    eprintln!("{}", result.summary);
    Ok(())
}

fn cmd_detect(flags: &HashMap<String, String>) -> Result<(), String> {
    let obs = read(required(flags, "obs")?)?;
    let window = flags
        .get("window")
        .map(|v| v.parse::<u64>().map_err(|e| format!("--window: {e}")))
        .transpose()?;
    let out = required(flags, "out")?;
    let fault_plan = parse_fault_plan(flags)?;
    let sentinel = parse_sentinel(flags)?;
    // Default (no flag) is available parallelism, decided in detect_with.
    let workers = flags
        .get("workers")
        .map(|v| match v.parse::<usize>() {
            Ok(n) if n >= 1 => Ok(n),
            Ok(_) => Err("--workers must be at least 1".to_string()),
            Err(e) => Err(format!("--workers {v:?}: {e}")),
        })
        .transpose()?;
    if flags.contains_key("model") && flags.contains_key("model-out") {
        return Err(
            "--model and --model-out are mutually exclusive (warm start vs save-after-learn)"
                .to_string(),
        );
    }
    let model = flags.get("model").map(|p| read_bytes(p)).transpose()?;
    let evidence = parse_evidence(flags)?;
    if evidence.is_off() && flags.contains_key("evidence-out") {
        return Err(
            "--evidence-out needs an evidence tier: pass --evidence full or --evidence sampled:N"
                .to_string(),
        );
    }
    let streaming = flags.contains_key("streaming");
    // A streaming run interrupted by SIGINT/SIGTERM drains and still
    // writes its partial outputs instead of dying with nothing.
    if streaming {
        install_shutdown_handlers();
    }
    let opts = commands::DetectOptions {
        window_secs: window,
        fault_plan,
        sentinel,
        workers,
        streaming,
        trace: flags.contains_key("trace-out"),
        model,
        model_out: flags.contains_key("model-out"),
        evidence,
        cancel: if streaming {
            Some(shutdown_flag())
        } else {
            None
        },
    };
    let result = commands::detect_with(&obs, &opts).map_err(|e| e.to_string())?;
    write(out, &result.events)?;
    if let Some(qpath) = flags.get("quarantine-out") {
        write(qpath, &result.quarantine)?;
    }
    if let Some(mpath) = flags.get("metrics-out") {
        write_atomic(mpath, result.metrics.as_bytes())?;
    }
    if let Some(tpath) = flags.get("trace-out") {
        write_atomic(tpath, result.trace.as_deref().unwrap_or("").as_bytes())?;
    }
    if let Some(mpath) = flags.get("model-out") {
        write_atomic(mpath, result.model.as_deref().unwrap_or(&[]))?;
    }
    if let Some(epath) = flags.get("evidence-out") {
        write_atomic(epath, result.evidence.as_deref().unwrap_or("").as_bytes())?;
    }
    eprintln!("{}", result.summary);
    Ok(())
}

fn cmd_federate(flags: &HashMap<String, String>) -> Result<(), String> {
    let obs = read(required(flags, "obs")?)?;
    let out = required(flags, "out")?;
    let window = flags
        .get("window")
        .map(|v| v.parse::<u64>().map_err(|e| format!("--window: {e}")))
        .transpose()?;
    let vantages = get_u64(flags, "vantages", 3)? as usize;
    let fusion = match flags.get("fusion") {
        None => outage_core::FusionPolicy::Union,
        Some(v) => outage_core::FusionPolicy::parse(v).map_err(|e| e.to_string())?,
    };
    let fault_vantage = flags
        .get("fault-vantage")
        .map(|v| {
            v.parse::<usize>()
                .map_err(|e| format!("--fault-vantage {v:?}: {e}"))
        })
        .transpose()?;
    let opts = commands::FederateOptions {
        window_secs: window,
        vantages,
        overlap: get_f64(flags, "overlap", 0.0)?,
        fusion,
        sentinel: parse_sentinel(flags)?,
        fault_plan: parse_fault_plan(flags)?,
        fault_vantage,
        model_out: flags.contains_key("model-out"),
    };
    let result = commands::federate(&obs, &opts).map_err(|e| e.to_string())?;
    write(out, &result.events)?;
    if let Some(apath) = flags.get("attribution-out") {
        write(apath, &result.attribution)?;
    }
    if let Some(mpath) = flags.get("metrics-out") {
        write_atomic(mpath, result.metrics.as_bytes())?;
    }
    if let Some(mpath) = flags.get("model-out") {
        write_atomic(mpath, result.model.as_deref().unwrap_or(&[]))?;
    }
    eprintln!("{}", result.summary);
    Ok(())
}

fn cmd_explain(args: &[String]) -> Result<(), String> {
    const USAGE: &str = "usage: passive-outage explain EVENT-ID \
                         (--evidence FILE | --url http://HOST:PORT) [--json]";
    let [id, rest @ ..] = args else {
        return Err(USAGE.to_string());
    };
    if id.starts_with("--") {
        return Err(format!("the event id comes first\n{USAGE}"));
    }
    let flags = parse_flags(rest)?;
    let json = flags.contains_key("json");
    let rendered = match (flags.get("evidence"), flags.get("url")) {
        (Some(_), Some(_)) => {
            return Err(format!(
                "--evidence and --url are mutually exclusive sources\n{USAGE}"
            ))
        }
        (Some(path), None) => commands::explain(&read(path)?, id, json),
        (None, Some(url)) => commands::explain_live(url, id, json),
        (None, None) => return Err(USAGE.to_string()),
    }
    .map_err(|e| e.to_string())?;
    print!("{rendered}");
    Ok(())
}

fn cmd_serve(flags: &HashMap<String, String>) -> Result<(), String> {
    if flags.contains_key("preset") && flags.contains_key("obs") {
        return Err("--preset and --obs are mutually exclusive feed sources".to_string());
    }
    let source = match flags.get("obs") {
        Some(path) => commands::ServeSource::ObsDoc {
            text: read(path)?,
            label: path.clone(),
        },
        None => commands::ServeSource::Preset {
            name: flags
                .get("preset")
                .cloned()
                .unwrap_or_else(|| "quick".to_string()),
            num_as: get_u64(flags, "num-as", 40)? as u32,
            seed: get_u64(flags, "seed", 42)?,
        },
    };
    let opts = commands::ServeOptions {
        source,
        accel: get_f64(flags, "accel", 3_600.0)?,
        epoch_secs: get_u64(flags, "epoch", 86_400)?,
        listen: flags
            .get("listen")
            .cloned()
            .unwrap_or_else(|| "127.0.0.1:0".to_string()),
        port_file: flags.get("port-file").map(PathBuf::from),
        checkpoint: flags.get("checkpoint").map(PathBuf::from),
        checkpoint_every_rolls: get_u64(flags, "checkpoint-every-rolls", 1)? as u32,
        resume: flags.contains_key("resume"),
        events_out: flags.get("events-out").map(PathBuf::from),
        metrics_out: flags.get("metrics-out").map(PathBuf::from),
        sentinel: parse_sentinel(flags)?,
        fault_plan: parse_fault_plan(flags)?,
        webhook: flags.get("webhook").cloned(),
        webhook_rate: get_f64(flags, "webhook-rate", 1.0)?,
        webhook_burst: get_u64(flags, "webhook-burst", 5)? as u32,
        queue_capacity: get_u64(flags, "queue-capacity", 1_024)? as usize,
        evidence: parse_evidence(flags)?,
        until: flags
            .get("until")
            .map(|v| v.parse::<u64>().map_err(|e| format!("--until {v:?}: {e}")))
            .transpose()?,
        vantages: get_u64(flags, "vantages", 1)? as usize,
    };
    install_shutdown_handlers();
    let outcome = commands::serve(&opts, shutdown_flag()).map_err(|e| e.to_string())?;
    eprintln!("{}", outcome.summary);
    Ok(())
}

fn cmd_learn(flags: &HashMap<String, String>) -> Result<(), String> {
    let obs = read(required(flags, "obs")?)?;
    let window = flags
        .get("window")
        .map(|v| v.parse::<u64>().map_err(|e| format!("--window: {e}")))
        .transpose()?;
    let workers = flags
        .get("workers")
        .map(|v| {
            v.parse::<usize>()
                .map_err(|e| format!("--workers {v:?}: {e}"))
        })
        .transpose()?;
    let out = required(flags, "model-out")?;
    let result = commands::learn(&obs, window, workers).map_err(|e| e.to_string())?;
    write_atomic(out, &result.model)?;
    eprintln!("{}", result.summary);
    Ok(())
}

fn cmd_model(args: &[String]) -> Result<(), String> {
    const USAGE: &str =
        "usage: passive-outage model inspect FILE | verify FILE | merge A B --out FILE";
    let Some(action) = args.first() else {
        return Err(USAGE.to_string());
    };
    match action.as_str() {
        "inspect" => {
            let [_, path] = args else {
                return Err(USAGE.to_string());
            };
            let rendered =
                commands::model_inspect(&read_bytes(path)?).map_err(|e| e.to_string())?;
            print!("{rendered}");
            Ok(())
        }
        "verify" => {
            let [_, path] = args else {
                return Err(USAGE.to_string());
            };
            let line = commands::model_verify(&read_bytes(path)?).map_err(|e| e.to_string())?;
            println!("{line}");
            Ok(())
        }
        "merge" => {
            let [_, a, b, rest @ ..] = args else {
                return Err(USAGE.to_string());
            };
            let flags = parse_flags(rest)?;
            let out = required(&flags, "out")?;
            let (bytes, summary) = commands::model_merge(&read_bytes(a)?, &read_bytes(b)?)
                .map_err(|e| e.to_string())?;
            write_atomic(out, &bytes)?;
            eprintln!("{summary}");
            Ok(())
        }
        other => Err(format!("unknown model action {other:?}\n{USAGE}")),
    }
}

fn cmd_status(args: &[String]) -> Result<(), String> {
    let [path] = args else {
        return Err("usage: passive-outage status METRICS-FILE".to_string());
    };
    let snapshot = read(path)?;
    let summary = commands::status(&snapshot).map_err(|e| e.to_string())?;
    print!("{summary}");
    Ok(())
}

fn cmd_eval(flags: &HashMap<String, String>) -> Result<(), String> {
    let observed = read(required(flags, "observed")?)?;
    let truth = read(required(flags, "truth")?)?;
    let window = get_u64(flags, "window", 86_400)?;
    let min_secs = get_u64(flags, "min-secs", 0)?;
    let tolerance = get_u64(flags, "tolerance", 180)?;
    let event_mode = flags.contains_key("events");
    let excluded = match flags.get("exclude") {
        None => IntervalSet::new(),
        Some(path) => {
            let text = read(path)?;
            outage_cli::format::parse_intervals(&text)
                .map_err(|e| format!("exclusions {path}: {e}"))?
        }
    };
    let table = commands::eval(
        &observed, &truth, window, min_secs, event_mode, tolerance, &excluded,
    )
    .map_err(|e| e.to_string())?;
    println!("{table}");
    Ok(())
}

fn cmd_coverage(flags: &HashMap<String, String>) -> Result<(), String> {
    let obs = read(required(flags, "obs")?)?;
    let table = commands::coverage(&obs).map_err(|e| e.to_string())?;
    println!("{table}");
    Ok(())
}

fn cmd_telescope(flags: &HashMap<String, String>) -> Result<(), String> {
    let preset = flags.get("preset").map(String::as_str).unwrap_or("quick");
    let num_as = get_u64(flags, "num-as", 40)? as u32;
    let seed = get_u64(flags, "seed", 42)?;
    let corrupt = match flags.get("corrupt") {
        None => 0.0,
        Some(v) => v.parse().map_err(|e| format!("--corrupt {v:?}: {e}"))?,
    };
    let line = commands::telescope(preset, num_as, seed, corrupt).map_err(|e| e.to_string())?;
    println!("{line}");
    Ok(())
}
