//! Command implementations, kept I/O-free for testability: each command
//! takes parsed inputs and returns the text it would print / write.

use crate::format;
use outage_core::{coverage_by_width, DetectorConfig, PassiveDetector};
use outage_eval::{duration_table, event_table, summarize, DurationMatrix, EventMatrix};
use outage_netsim::Scenario;
use outage_types::{
    durations, DetectorId, Interval, IntervalSet, OutageEvent, Prefix, Timeline,
    UnixTime,
};
use std::collections::HashMap;

/// Command error (bad arguments or bad input data).
#[derive(Debug)]
pub struct CommandError(pub String);

impl std::fmt::Display for CommandError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CommandError {}

impl From<format::ParseError> for CommandError {
    fn from(e: format::ParseError) -> Self {
        CommandError(e.to_string())
    }
}

/// Scenario presets nameable from the command line.
pub fn build_preset(name: &str, num_as: u32, seed: u64) -> Result<Scenario, CommandError> {
    Ok(match name {
        "quick" => Scenario::quick(seed),
        "table1" => Scenario::table1(num_as, seed),
        "table3" => Scenario::table3(num_as, seed),
        "tradeoff" => Scenario::tradeoff(num_as, seed),
        "ipv6-day" => Scenario::ipv6_day(num_as, seed),
        other => {
            return Err(CommandError(format!(
                "unknown preset {other:?} (try quick, table1, table3, tradeoff, ipv6-day)"
            )))
        }
    })
}

/// Output of `simulate`.
pub struct SimulateOutput {
    /// Observation document.
    pub observations: String,
    /// Ground-truth event document.
    pub truth: String,
    /// Human summary for stderr.
    pub summary: String,
}

/// `simulate`: generate a scenario's passive feed and its ground truth.
pub fn simulate(preset: &str, num_as: u32, seed: u64) -> Result<SimulateOutput, CommandError> {
    let scenario = build_preset(preset, num_as, seed)?;
    let observations = scenario.collect_observations();
    let truth_events: Vec<OutageEvent> = {
        let mut evs: Vec<OutageEvent> = scenario
            .schedule
            .blocks_with_outages()
            .flat_map(|(p, set)| {
                set.iter().map(|iv| OutageEvent {
                    prefix: *p,
                    interval: *iv,
                    confidence: 1.0,
                    detector: DetectorId::GroundTruth,
                })
            })
            .collect();
        evs.sort_by_key(|e| (e.interval.start, e.prefix));
        evs
    };
    let summary = format!(
        "preset {} ({} ASes, seed {}): {} observations from {} blocks, {} ground-truth outages over {}",
        preset,
        num_as,
        seed,
        observations.len(),
        scenario.internet.blocks().len(),
        truth_events.len(),
        scenario.window(),
    );
    Ok(SimulateOutput {
        observations: format::render_observations(&observations),
        truth: format::render_events(&truth_events),
        summary,
    })
}

/// Output of `detect`.
pub struct DetectOutput {
    /// Detected event document.
    pub events: String,
    /// Human summary.
    pub summary: String,
}

/// `detect`: run the passive detector over an observation document.
pub fn detect(observations_doc: &str, window_secs: Option<u64>) -> Result<DetectOutput, CommandError> {
    let observations = format::parse_observations(observations_doc)?;
    if observations.is_empty() {
        return Err(CommandError("no observations in input".into()));
    }
    let max_t = observations
        .iter()
        .map(|o| o.time.secs())
        .max()
        .expect("non-empty");
    let window_end = window_secs.unwrap_or_else(|| max_t.div_ceil(durations::DAY) * durations::DAY);
    if window_end <= max_t && window_secs.is_some() {
        return Err(CommandError(format!(
            "--window {window_end} does not cover the last observation at {max_t}"
        )));
    }
    let window = Interval::new(UnixTime::EPOCH, UnixTime(window_end));

    let detector = PassiveDetector::new(DetectorConfig::default());
    let report = detector.run_slice(&observations, window);
    let mut events = report.events();
    events.sort_by_key(|e| (e.interval.start, e.prefix));

    let d = report.diagnostics();
    let summary = format!(
        "window {}: {} observations, {} blocks covered ({} uncovered), {} outage events \
         ({} via bins, {} via exact-timestamp gaps)\n{}",
        window,
        observations.len(),
        report.covered_blocks(),
        report.uncovered.len(),
        events.len(),
        d.bin_detections,
        d.gap_detections,
        summarize(&events, 5),
    );
    Ok(DetectOutput {
        events: format::render_events(&events),
        summary,
    })
}

/// `coverage`: the Figure-1 curve for an observation document.
pub fn coverage(observations_doc: &str) -> Result<String, CommandError> {
    let observations = format::parse_observations(observations_doc)?;
    if observations.is_empty() {
        return Err(CommandError("no observations in input".into()));
    }
    let max_t = observations.iter().map(|o| o.time.secs()).max().unwrap();
    let window = Interval::new(
        UnixTime::EPOCH,
        UnixTime(max_t.div_ceil(durations::DAY) * durations::DAY),
    );
    let detector = PassiveDetector::new(DetectorConfig::default());
    let histories = detector.learn_histories(observations.iter().copied(), window);
    let mut out = String::from("bin-width-secs measurable total fraction\n");
    for p in coverage_by_width(&histories, detector.config(), None) {
        out.push_str(&format!(
            "{:>14} {:>10} {:>5} {:>8.3}\n",
            p.width,
            p.measurable,
            p.total,
            p.fraction()
        ));
    }
    Ok(out)
}

/// Fold an event document into per-prefix timelines over a window.
fn timelines_from_events(
    events: &[OutageEvent],
    window: Interval,
) -> HashMap<Prefix, Timeline> {
    let mut downs: HashMap<Prefix, IntervalSet> = HashMap::new();
    for ev in events {
        downs.entry(ev.prefix).or_default().insert(ev.interval);
    }
    downs
        .into_iter()
        .map(|(p, set)| (p, Timeline::from_down(window, set)))
        .collect()
}

/// `eval`: compare two event documents (observation vs truth) over the
/// prefixes present in either, within an explicit window.
pub fn eval(
    observed_doc: &str,
    truth_doc: &str,
    window_secs: u64,
    min_secs: u64,
    event_mode: bool,
    tolerance: u64,
) -> Result<String, CommandError> {
    let observed = format::parse_events(observed_doc)?;
    let truth = format::parse_events(truth_doc)?;
    let window = Interval::new(UnixTime::EPOCH, UnixTime(window_secs));
    let obs_tl = timelines_from_events(&observed, window);
    let tru_tl = timelines_from_events(&truth, window);

    // Population: union of prefixes (a prefix absent from a document is
    // all-up there).
    let mut prefixes: Vec<Prefix> = obs_tl.keys().chain(tru_tl.keys()).copied().collect();
    prefixes.sort_unstable();
    prefixes.dedup();
    let all_up = Timeline::all_up(window);

    if event_mode {
        let mut m = EventMatrix::default();
        for p in &prefixes {
            let o = obs_tl.get(p).unwrap_or(&all_up);
            let t = tru_tl.get(p).unwrap_or(&all_up);
            m += EventMatrix::of(o, t, min_secs, tolerance);
        }
        Ok(event_table(
            &format!(
                "event-matched comparison ({} prefixes, ≥{} s, ±{} s)",
                prefixes.len(),
                min_secs,
                tolerance
            ),
            &m,
        ))
    } else {
        let mut m = DurationMatrix::default();
        for p in &prefixes {
            let o = obs_tl.get(p).unwrap_or(&all_up);
            let t = tru_tl.get(p).unwrap_or(&all_up);
            m += DurationMatrix::of_min_duration(o, t, min_secs);
        }
        Ok(duration_table(
            &format!(
                "duration-weighted comparison ({} prefixes, ≥{} s)",
                prefixes.len(),
                min_secs
            ),
            &m,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulate_then_detect_then_eval_pipeline() {
        let sim = simulate("quick", 40, 5).unwrap();
        assert!(sim.summary.contains("observations"));
        let det = detect(&sim.observations, Some(86_400)).unwrap();
        assert!(det.summary.contains("blocks covered"));
        // Duration-mode eval against ground truth: precision should be
        // very high end to end through the text formats.
        let table = eval(&det.events, &sim.truth, 86_400, 0, false, 0).unwrap();
        assert!(table.contains("Precision"), "{table}");
        // extract precision value from the rendering
        let line = table
            .lines()
            .find(|l| l.contains("Precision"))
            .unwrap()
            .to_string();
        let value: f64 = line
            .split("Precision")
            .nth(1)
            .unwrap()
            .trim()
            .trim_end_matches(['|', ' '])
            .trim()
            .parse()
            .unwrap();
        assert!(value > 0.98, "precision {value} via CLI pipeline");
    }

    #[test]
    fn detect_window_validation() {
        let sim = simulate("quick", 40, 6).unwrap();
        assert!(detect(&sim.observations, Some(10)).is_err());
        assert!(detect("# empty\n", None).is_err());
    }

    #[test]
    fn unknown_preset_rejected() {
        assert!(build_preset("nope", 10, 1).is_err());
        assert!(simulate("nope", 10, 1).is_err());
    }

    #[test]
    fn coverage_prints_monotone_curve() {
        let sim = simulate("quick", 40, 7).unwrap();
        let table = coverage(&sim.observations).unwrap();
        let fractions: Vec<f64> = table
            .lines()
            .skip(1)
            .map(|l| l.split_whitespace().last().unwrap().parse().unwrap())
            .collect();
        assert!(fractions.len() >= 3);
        for w in fractions.windows(2) {
            assert!(w[0] <= w[1] + 1e-9);
        }
    }

    #[test]
    fn eval_event_mode_runs() {
        let sim = simulate("table3", 30, 8).unwrap();
        let det = detect(&sim.observations, Some(86_400)).unwrap();
        let table = eval(&det.events, &sim.truth, 86_400, 300, true, 180).unwrap();
        assert!(table.contains("event"), "{table}");
        assert!(table.contains("TNR"));
    }

    #[test]
    fn eval_handles_one_sided_prefixes() {
        // truth has an outage on a prefix the observer never mentions
        let truth = "# ev\n10.0.0.0/24 100 800 1.000 ground-truth\n";
        let observed = "# ev\n10.0.1.0/24 100 800 0.900 passive-bayes\n";
        let table = eval(observed, truth, 86_400, 0, false, 0).unwrap();
        // the missed outage is false availability, the invented one false
        // outage; both prefixes accounted for the full window
        assert!(table.contains("fa = 700"), "{table}");
        assert!(table.contains("fo = 700"), "{table}");
    }
}
