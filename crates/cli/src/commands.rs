//! Command implementations, kept I/O-free for testability: each command
//! takes parsed inputs and returns the text it would print / write.

use crate::format;
use outage_core::LearnedModel;
use outage_core::{
    coverage_by_width, detect_parallel, detect_parallel_with_sentinel, ConfigError, DetectorConfig,
    PassiveDetector, SentinelConfig,
};
use outage_dnswire::Telescope;
use outage_eval::{duration_table, event_table, summarize, DurationMatrix, EventMatrix};
use outage_netsim::{FaultPlan, PacketFeed, Scenario};
use outage_obs::{parse_prometheus, Obs, Snapshot, StoreMetrics};
use outage_store::{decode_checkpoint, encode_checkpoint, Checkpoint, StoreError};
use outage_types::{
    durations, AddrFamily, DetectorId, Interval, IntervalSet, Observation, OutageEvent, Prefix,
    Timeline, UnixTime,
};
use std::collections::HashMap;

/// Command error (bad arguments or bad input data).
#[derive(Debug)]
pub struct CommandError(pub String);

impl std::fmt::Display for CommandError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CommandError {}

impl From<format::ParseError> for CommandError {
    fn from(e: format::ParseError) -> Self {
        CommandError(e.to_string())
    }
}

impl From<ConfigError> for CommandError {
    fn from(e: ConfigError) -> Self {
        CommandError(format!("invalid detector configuration: {e}"))
    }
}

impl From<StoreError> for CommandError {
    fn from(e: StoreError) -> Self {
        CommandError(format!("model checkpoint: {e}"))
    }
}

impl From<outage_core::ModelError> for CommandError {
    fn from(e: outage_core::ModelError) -> Self {
        CommandError(format!("model merge: {e}"))
    }
}

/// The window a document is detected (and learned) over: explicit
/// seconds, or the last observation rounded up to a whole day.
fn detection_window(
    observations: &[Observation],
    window_secs: Option<u64>,
) -> Result<Interval, CommandError> {
    let max_t = observations
        .iter()
        .map(|o| o.time.secs())
        .max()
        .expect("non-empty");
    let window_end = window_secs.unwrap_or_else(|| max_t.div_ceil(durations::DAY) * durations::DAY);
    if window_end <= max_t && window_secs.is_some() {
        return Err(CommandError(format!(
            "--window {window_end} does not cover the last observation at {max_t}"
        )));
    }
    Ok(Interval::new(UnixTime::EPOCH, UnixTime(window_end)))
}

/// Worker-count resolution shared by `learn` and `detect`.
fn resolve_workers(workers: Option<usize>) -> Result<usize, CommandError> {
    let workers = workers.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    });
    if workers == 0 {
        return Err(CommandError("--workers must be at least 1".into()));
    }
    Ok(workers)
}

/// Scenario presets nameable from the command line.
pub fn build_preset(name: &str, num_as: u32, seed: u64) -> Result<Scenario, CommandError> {
    Ok(match name {
        "quick" => Scenario::quick(seed),
        "table1" => Scenario::table1(num_as, seed),
        "table3" => Scenario::table3(num_as, seed),
        "tradeoff" => Scenario::tradeoff(num_as, seed),
        "ipv6-day" => Scenario::ipv6_day(num_as, seed),
        other => {
            return Err(CommandError(format!(
                "unknown preset {other:?} (try quick, table1, table3, tradeoff, ipv6-day)"
            )))
        }
    })
}

/// Output of `simulate`.
pub struct SimulateOutput {
    /// Observation document.
    pub observations: String,
    /// Ground-truth event document.
    pub truth: String,
    /// Human summary for stderr.
    pub summary: String,
}

/// `simulate`: generate a scenario's passive feed and its ground truth.
pub fn simulate(preset: &str, num_as: u32, seed: u64) -> Result<SimulateOutput, CommandError> {
    let scenario = build_preset(preset, num_as, seed)?;
    let observations = scenario.collect_observations();
    let truth_events: Vec<OutageEvent> = {
        let mut evs: Vec<OutageEvent> = scenario
            .schedule
            .blocks_with_outages()
            .flat_map(|(p, set)| {
                set.iter().map(|iv| OutageEvent {
                    prefix: *p,
                    interval: *iv,
                    confidence: 1.0,
                    detector: DetectorId::GroundTruth,
                })
            })
            .collect();
        evs.sort_by_key(|e| (e.interval.start, e.prefix));
        evs
    };
    let summary = format!(
        "preset {} ({} ASes, seed {}): {} observations from {} blocks, {} ground-truth outages over {}",
        preset,
        num_as,
        seed,
        observations.len(),
        scenario.internet.blocks().len(),
        truth_events.len(),
        scenario.window(),
    );
    Ok(SimulateOutput {
        observations: format::render_observations(&observations),
        truth: format::render_events(&truth_events),
        summary,
    })
}

/// Output of `detect`.
#[derive(Debug)]
pub struct DetectOutput {
    /// Detected event document.
    pub events: String,
    /// Quarantined-interval document (empty set unless a sentinel ran
    /// and tripped).
    pub quarantine: String,
    /// Prometheus-text metrics snapshot of the run.
    pub metrics: String,
    /// Span trace as JSON lines (only when tracing was requested).
    pub trace: Option<String>,
    /// Encoded model checkpoint of the learned histories (only when
    /// [`DetectOptions::model_out`] was set).
    pub model: Option<Vec<u8>>,
    /// Human summary.
    pub summary: String,
}

/// Knobs for [`detect_with`] beyond the observation document itself.
#[derive(Debug, Clone, Default)]
pub struct DetectOptions {
    /// Explicit window end (seconds); defaults to the last observation
    /// rounded up to a whole day.
    pub window_secs: Option<u64>,
    /// Sensor faults to inject into the feed before detection.
    pub fault_plan: Option<FaultPlan>,
    /// Guard detection with a feed sentinel under this configuration.
    pub sentinel: Option<SentinelConfig>,
    /// Worker threads for the sharded history pass and the parallel
    /// detection driver; `None` means available parallelism.
    pub workers: Option<usize>,
    /// Record structured spans (for `--trace-out`). Metrics are always
    /// collected; only span tracing is opt-in.
    pub trace: bool,
    /// An encoded model checkpoint (`learn --model-out`): warm-start by
    /// skipping the history pass entirely. The checkpoint's config
    /// fingerprint and history window must match this run's.
    pub model: Option<Vec<u8>>,
    /// Encode the learned model into [`DetectOutput::model`] so the
    /// caller can persist it (`detect --model-out`). Meaningless — and
    /// rejected — together with `model`: a warm-started run has nothing
    /// newly learned to save.
    pub model_out: bool,
}

/// `detect`: run the passive detector over an observation document.
pub fn detect(
    observations_doc: &str,
    window_secs: Option<u64>,
) -> Result<DetectOutput, CommandError> {
    detect_with(
        observations_doc,
        &DetectOptions {
            window_secs,
            ..DetectOptions::default()
        },
    )
}

/// `detect` with fault injection and/or a feed sentinel.
pub fn detect_with(
    observations_doc: &str,
    opts: &DetectOptions,
) -> Result<DetectOutput, CommandError> {
    let mut observations = format::parse_observations(observations_doc)?;
    if observations.is_empty() {
        return Err(CommandError("no observations in input".into()));
    }
    let mut fault_note = String::new();
    if let Some(plan) = &opts.fault_plan {
        let before = observations.len();
        observations = plan.apply_to_vec(&observations);
        // The batch detector wants time order; delivery-order effects
        // (reordering) only matter to the streaming path.
        observations.sort_unstable();
        if observations.is_empty() {
            return Err(CommandError("fault plan silenced every observation".into()));
        }
        fault_note = format!(
            " [faults: {} -> {} observations, {} s marked faulted]",
            before,
            observations.len(),
            plan.faulted().total()
        );
    }
    let window = detection_window(&observations, opts.window_secs)?;
    let workers = resolve_workers(opts.workers)?;

    let obs = if opts.trace {
        Obs::with_tracing()
    } else {
        Obs::new()
    };
    let detector = PassiveDetector::try_new(DetectorConfig::default())?.with_obs(obs.clone());
    if opts.model.is_some() && opts.model_out {
        return Err(CommandError(
            "--model and --model-out are mutually exclusive: a warm-started run \
             skips learning, so there is no newly learned model to save"
                .into(),
        ));
    }
    // Both passes go through the parallel path by default: sharded
    // history learning, then the router/worker detection driver (both
    // produce results identical to the sequential pipeline). A supplied
    // checkpoint replaces the learning pass entirely (warm start).
    let mut warm_note = String::new();
    let mut model_bytes = None;
    let histories = match &opts.model {
        Some(bytes) => {
            let metrics = StoreMetrics::register(&obs.registry);
            let checkpoint = match decode_checkpoint(bytes) {
                Ok(c) => c,
                Err(e) => {
                    if matches!(
                        e,
                        StoreError::ChecksumMismatch { .. } | StoreError::Inconsistent { .. }
                    ) {
                        metrics.checksum_failures.inc();
                    }
                    return Err(e.into());
                }
            };
            metrics.bytes_read.add(bytes.len() as u64);
            let expected = detector.config().fingerprint();
            if checkpoint.fingerprint != expected {
                return Err(StoreError::FingerprintMismatch {
                    expected,
                    found: checkpoint.fingerprint,
                }
                .into());
            }
            if checkpoint.model.window() != window {
                return Err(CommandError(format!(
                    "checkpoint history window {} does not match the detection window {} \
                     (pass --window {} to align them)",
                    checkpoint.model.window(),
                    window,
                    checkpoint.model.window().end.secs()
                )));
            }
            metrics.warm_start_hits.inc();
            warm_note = " [warm start from checkpoint]".to_string();
            checkpoint.model.into_indexed()
        }
        None if opts.model_out => {
            let model = detector.learn_model(&observations, window, workers);
            let encoded = encode_checkpoint(&Checkpoint {
                fingerprint: detector.config().fingerprint(),
                model: model.clone(),
            });
            StoreMetrics::register(&obs.registry)
                .bytes_written
                .add(encoded.len() as u64);
            model_bytes = Some(encoded);
            model.into_indexed()
        }
        None => detector.learn_histories_parallel(&observations, window, workers),
    };
    let report = match &opts.sentinel {
        None => detect_parallel(
            &detector,
            &histories,
            observations.iter().copied(),
            window,
            workers,
        ),
        Some(cfg) => detect_parallel_with_sentinel(
            &detector,
            &histories,
            observations.iter().copied(),
            window,
            workers,
            cfg,
        )?,
    };
    let mut events = report.events();
    events.sort_by_key(|e| (e.interval.start, e.prefix));

    let quarantine_note = if opts.sentinel.is_some() {
        format!(
            ", {} quarantined spans totalling {} s",
            report.quarantined_spans(),
            report.quarantined_secs()
        )
    } else {
        String::new()
    };
    let d = report.diagnostics();
    let summary = format!(
        "window {}: {} observations{}{}, {} blocks covered ({} uncovered), {} outage events \
         ({} via bins, {} via exact-timestamp gaps){}, {} workers\n{}",
        window,
        observations.len(),
        fault_note,
        warm_note,
        report.covered_blocks(),
        report.uncovered.len(),
        events.len(),
        d.bin_detections,
        d.gap_detections,
        quarantine_note,
        workers,
        summarize(&events, 5),
    );
    Ok(DetectOutput {
        events: format::render_events(&events),
        quarantine: format::render_intervals(&report.quarantined),
        metrics: obs.registry.render_prometheus(),
        trace: obs.tracer.as_ref().map(|t| t.to_jsonl()),
        model: model_bytes,
        summary,
    })
}

/// Output of `learn`.
#[derive(Debug)]
pub struct LearnOutput {
    /// The encoded model checkpoint (for `--model-out`).
    pub model: Vec<u8>,
    /// Human summary.
    pub summary: String,
}

/// `learn`: run only the history pass over an observation document and
/// produce a model checkpoint for later warm-start detection or
/// incremental merging.
pub fn learn(
    observations_doc: &str,
    window_secs: Option<u64>,
    workers: Option<usize>,
) -> Result<LearnOutput, CommandError> {
    let observations = format::parse_observations(observations_doc)?;
    if observations.is_empty() {
        return Err(CommandError("no observations in input".into()));
    }
    let window = detection_window(&observations, window_secs)?;
    let workers = resolve_workers(workers)?;
    let detector = PassiveDetector::try_new(DetectorConfig::default())?;
    let model = detector.learn_model(&observations, window, workers);
    let summary = format!(
        "learned {} block histories from {} observations over {} ({} workers, fingerprint {:#018x})",
        model.len(),
        observations.len(),
        window,
        workers,
        detector.config().fingerprint(),
    );
    let encoded = encode_checkpoint(&Checkpoint {
        fingerprint: detector.config().fingerprint(),
        model,
    });
    Ok(LearnOutput {
        model: encoded,
        summary,
    })
}

/// `model inspect`: human-readable view of a checkpoint's header and
/// shape (fully validates the file along the way).
pub fn model_inspect(bytes: &[u8]) -> Result<String, CommandError> {
    let checkpoint = decode_checkpoint(bytes)?;
    let model = &checkpoint.model;
    let v4 = model
        .index()
        .prefixes()
        .iter()
        .filter(|p| p.family() == AddrFamily::V4)
        .count();
    let v6 = model.len() - v4;
    let total_events: u64 = model.indexed().histories().iter().map(|h| h.total).sum();
    let shaped = model
        .indexed()
        .histories()
        .iter()
        .filter(|h| h.shape_estimated)
        .count();
    Ok(format!(
        "model checkpoint ({} bytes, format v{})\n\
         \x20 fingerprint   {:#018x}\n\
         \x20 window        {} ({} hour rows)\n\
         \x20 blocks        {} ({v4} IPv4, {v6} IPv6; {shaped} with estimated diurnal shape)\n\
         \x20 arrivals      {total_events}\n",
        bytes.len(),
        outage_store::VERSION,
        checkpoint.fingerprint,
        model.window(),
        model.hours(),
        model.len(),
    ))
}

/// `model verify`: full structural validation (CRCs, section
/// consistency, arena/history agreement). Returns a one-line bill of
/// health; any corruption surfaces as the typed store error.
pub fn model_verify(bytes: &[u8]) -> Result<String, CommandError> {
    let checkpoint = decode_checkpoint(bytes)?;
    Ok(format!(
        "ok: {} bytes, {} blocks over {}, fingerprint {:#018x}",
        bytes.len(),
        checkpoint.model.len(),
        checkpoint.model.window(),
        checkpoint.fingerprint,
    ))
}

/// `model merge`: combine two checkpoints over identical or adjacent
/// history windows into one. Both must carry the same config
/// fingerprint — models learned under different configurations do not
/// mix.
pub fn model_merge(a_bytes: &[u8], b_bytes: &[u8]) -> Result<(Vec<u8>, String), CommandError> {
    let a = decode_checkpoint(a_bytes)?;
    let b = decode_checkpoint(b_bytes)?;
    if a.fingerprint != b.fingerprint {
        return Err(CommandError(format!(
            "checkpoints were learned under different configurations \
             ({:#018x} vs {:#018x}) and cannot be merged",
            a.fingerprint, b.fingerprint
        )));
    }
    let merged = LearnedModel::merge(&a.model, &b.model)?;
    let summary = format!(
        "merged {} + {} blocks over {} + {} into {} blocks over {}",
        a.model.len(),
        b.model.len(),
        a.model.window(),
        b.model.window(),
        merged.len(),
        merged.window(),
    );
    let encoded = encode_checkpoint(&Checkpoint {
        fingerprint: a.fingerprint,
        model: merged,
    });
    Ok((encoded, summary))
}

/// `coverage`: the Figure-1 curve for an observation document.
pub fn coverage(observations_doc: &str) -> Result<String, CommandError> {
    let observations = format::parse_observations(observations_doc)?;
    if observations.is_empty() {
        return Err(CommandError("no observations in input".into()));
    }
    let max_t = observations.iter().map(|o| o.time.secs()).max().unwrap();
    let window = Interval::new(
        UnixTime::EPOCH,
        UnixTime(max_t.div_ceil(durations::DAY) * durations::DAY),
    );
    let detector = PassiveDetector::new(DetectorConfig::default());
    let histories = detector.learn_histories(observations.iter().copied(), window);
    let mut out = String::from("bin-width-secs measurable total fraction\n");
    for p in coverage_by_width(&histories, detector.config(), None) {
        out.push_str(&format!(
            "{:>14} {:>10} {:>5} {:>8.3}\n",
            p.width,
            p.measurable,
            p.total,
            p.fraction()
        ));
    }
    Ok(out)
}

/// Fold an event document into per-prefix timelines over a window.
fn timelines_from_events(events: &[OutageEvent], window: Interval) -> HashMap<Prefix, Timeline> {
    let mut downs: HashMap<Prefix, IntervalSet> = HashMap::new();
    for ev in events {
        downs.entry(ev.prefix).or_default().insert(ev.interval);
    }
    downs
        .into_iter()
        .map(|(p, set)| (p, Timeline::from_down(window, set)))
        .collect()
}

/// `eval`: compare two event documents (observation vs truth) over the
/// prefixes present in either, within an explicit window. Spans in
/// `excluded` (e.g. sentinel quarantine) are scored for neither side.
pub fn eval(
    observed_doc: &str,
    truth_doc: &str,
    window_secs: u64,
    min_secs: u64,
    event_mode: bool,
    tolerance: u64,
    excluded: &IntervalSet,
) -> Result<String, CommandError> {
    let observed = format::parse_events(observed_doc)?;
    let truth = format::parse_events(truth_doc)?;
    let window = Interval::new(UnixTime::EPOCH, UnixTime(window_secs));
    let obs_tl = timelines_from_events(&observed, window);
    let tru_tl = timelines_from_events(&truth, window);

    // Population: union of prefixes (a prefix absent from a document is
    // all-up there).
    let mut prefixes: Vec<Prefix> = obs_tl.keys().chain(tru_tl.keys()).copied().collect();
    prefixes.sort_unstable();
    prefixes.dedup();
    let all_up = Timeline::all_up(window);
    let exclusion_note = if excluded.is_empty() {
        String::new()
    } else {
        format!(", {} s excluded", excluded.total())
    };

    if event_mode {
        let mut m = EventMatrix::default();
        for p in &prefixes {
            let o = obs_tl.get(p).unwrap_or(&all_up);
            let t = tru_tl.get(p).unwrap_or(&all_up);
            m += EventMatrix::of_excluding(o, t, min_secs, tolerance, excluded);
        }
        Ok(event_table(
            &format!(
                "event-matched comparison ({} prefixes, ≥{} s, ±{} s{})",
                prefixes.len(),
                min_secs,
                tolerance,
                exclusion_note
            ),
            &m,
        ))
    } else {
        let mut m = DurationMatrix::default();
        for p in &prefixes {
            let o = obs_tl.get(p).unwrap_or(&all_up);
            let t = tru_tl.get(p).unwrap_or(&all_up);
            m += DurationMatrix::of_excluding(o, t, min_secs, excluded);
        }
        Ok(duration_table(
            &format!(
                "duration-weighted comparison ({} prefixes, ≥{} s{})",
                prefixes.len(),
                min_secs,
                exclusion_note
            ),
            &m,
        ))
    }
}

/// Label value of `key` on a sample, if present.
fn label<'a>(s: &'a outage_obs::Sample, key: &str) -> Option<&'a str> {
    s.labels
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v.as_str())
}

/// `status`: render a human health summary from a `--metrics-out`
/// Prometheus snapshot.
pub fn status(snapshot_text: &str) -> Result<String, CommandError> {
    let snap = parse_prometheus(snapshot_text)
        .map_err(|e| CommandError(format!("metrics snapshot: {e}")))?;
    let mut out = String::new();

    status_sentinel(&snap, &mut out);
    status_quarantine(&snap, &mut out);
    status_detection(&snap, &mut out);
    status_stages(&snap, &mut out);
    status_router(&snap, &mut out);

    if out.is_empty() {
        return Err(CommandError(
            "snapshot holds no passive-outage (po_*) metrics".into(),
        ));
    }
    Ok(out)
}

fn status_sentinel(snap: &Snapshot, out: &mut String) {
    let Some(health) = snap.value("po_sentinel_health", &[]) else {
        return;
    };
    let state = match health as i64 {
        0 => "healthy",
        1 => "degraded",
        2 => "dark",
        _ => "unknown",
    };
    out.push_str("feed sentinel\n");
    out.push_str(&format!("  final state     {state}\n"));
    if let Some(buckets) = snap.value("po_sentinel_buckets_total", &[]) {
        let unhealthy = snap
            .value("po_sentinel_unhealthy_buckets_total", &[])
            .unwrap_or(0.0);
        out.push_str(&format!(
            "  judged buckets  {buckets:.0} ({unhealthy:.0} unhealthy)\n"
        ));
    }
    let transitions: Vec<String> = snap
        .matching("po_sentinel_transitions_total")
        .into_iter()
        .filter(|s| s.value > 0.0)
        .filter_map(|s| {
            Some(format!(
                "{}->{} {:.0}",
                label(s, "from")?,
                label(s, "to")?,
                s.value
            ))
        })
        .collect();
    out.push_str(&format!(
        "  transitions     {}\n",
        if transitions.is_empty() {
            "none".to_string()
        } else {
            transitions.join(", ")
        }
    ));
    let dwell: Vec<String> = snap
        .matching("po_sentinel_time_in_state_seconds_total")
        .into_iter()
        .filter(|s| s.value > 0.0)
        .filter_map(|s| Some(format!("{} {:.0} s", label(s, "state")?, s.value)))
        .collect();
    if !dwell.is_empty() {
        out.push_str(&format!("  time in state   {}\n", dwell.join(", ")));
    }
}

fn status_quarantine(snap: &Snapshot, out: &mut String) {
    let spans = snap.value("po_quarantine_intervals_total", &[]);
    let secs = snap.value("po_quarantine_seconds_total", &[]);
    if spans.is_none() && secs.is_none() {
        return;
    }
    out.push_str("quarantine\n");
    out.push_str(&format!(
        "  spans           {:.0} totalling {:.0} s\n",
        spans.unwrap_or(0.0),
        secs.unwrap_or(0.0)
    ));
}

fn status_detection(snap: &Snapshot, out: &mut String) {
    let Some(arrivals) = snap.value("po_detect_arrivals_total", &[]) else {
        return;
    };
    out.push_str("detection\n");
    let units = snap.value("po_detect_units", &[]).unwrap_or(0.0);
    let covered = snap.value("po_detect_covered_blocks", &[]).unwrap_or(0.0);
    let strays = snap.value("po_detect_strays_total", &[]).unwrap_or(0.0);
    out.push_str(&format!(
        "  arrivals        {arrivals:.0} over {units:.0} units ({covered:.0} blocks covered, {strays:.0} strays)\n"
    ));
    let bins = snap
        .value("po_detect_verdicts_total", &[("path", "bin")])
        .unwrap_or(0.0);
    let gaps = snap
        .value("po_detect_verdicts_total", &[("path", "gap")])
        .unwrap_or(0.0);
    out.push_str(&format!(
        "  verdicts        {:.0} ({bins:.0} via bins, {gaps:.0} via gaps)\n",
        bins + gaps
    ));
}

fn status_stages(snap: &Snapshot, out: &mut String) {
    let sums = snap.matching("po_stage_seconds_sum");
    if sums.is_empty() {
        return;
    }
    out.push_str("stages\n");
    for s in sums {
        let Some(stage) = label(s, "stage") else {
            continue;
        };
        let count = snap
            .value("po_stage_seconds_count", &[("stage", stage)])
            .unwrap_or(0.0);
        out.push_str(&format!(
            "  {stage:<15} {:.3} s over {count:.0} run(s)\n",
            s.value
        ));
    }
}

fn status_router(snap: &Snapshot, out: &mut String) {
    let batches = snap.value("po_router_batches_total", &[]);
    let busy = snap.matching("po_worker_busy_seconds_total");
    if batches.is_none() && busy.is_empty() {
        return;
    }
    out.push_str("parallel driver\n");
    if let Some(b) = batches {
        let routed = snap
            .value("po_router_observations_total", &[])
            .unwrap_or(0.0);
        let skips = snap.value("po_router_skipto_total", &[]).unwrap_or(0.0);
        out.push_str(&format!(
            "  router          {b:.0} batches, {routed:.0} observations, {skips:.0} skip-to broadcasts\n"
        ));
    }
    let mut workers: Vec<(String, f64, f64)> = busy
        .into_iter()
        .filter_map(|s| {
            let w = label(s, "worker")?.to_string();
            let idle = snap
                .value("po_worker_idle_seconds_total", &[("worker", &w)])
                .unwrap_or(0.0);
            Some((w, s.value, idle))
        })
        .collect();
    workers.sort_by_key(|(w, _, _)| w.parse::<u64>().unwrap_or(u64::MAX));
    for (w, busy_s, idle_s) in workers {
        out.push_str(&format!(
            "  worker {w:<8} busy {busy_s:.3} s, idle {idle_s:.3} s\n"
        ));
    }
}

/// `telescope`: render a scenario's feed as wire-format DNS packets,
/// optionally corrupt some payloads, and report the intake breakdown the
/// parsing telescope saw.
pub fn telescope(
    preset: &str,
    num_as: u32,
    seed: u64,
    corrupt_prob: f64,
) -> Result<String, CommandError> {
    if !(0.0..=1.0).contains(&corrupt_prob) {
        return Err(CommandError(format!(
            "--corrupt {corrupt_prob} outside [0, 1]"
        )));
    }
    let scenario = build_preset(preset, num_as, seed)?;
    let observations = scenario.collect_observations();
    let mut feed = PacketFeed::new(seed);
    let packets: Vec<_> = feed.render_all(observations.iter().copied()).collect();
    let plan = FaultPlan::new(seed).corrupt(corrupt_prob);
    let registry = outage_obs::Registry::new();
    let mut tel = Telescope::new().with_metrics(&registry);
    let accepted = tel.observe_all(plan.corrupt_packets(packets)).count();
    let stats = tel.stats();
    debug_assert_eq!(accepted as u64, stats.accepted);
    debug_assert_eq!(
        registry
            .value("po_telescope_packets_total", &[("result", "accepted")])
            .unwrap_or(0.0) as u64,
        stats.accepted
    );
    Ok(format!(
        "preset {} ({} ASes, seed {}, corrupt {:.3}): {}",
        preset, num_as, seed, corrupt_prob, stats
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulate_then_detect_then_eval_pipeline() {
        let sim = simulate("quick", 40, 5).unwrap();
        assert!(sim.summary.contains("observations"));
        let det = detect(&sim.observations, Some(86_400)).unwrap();
        assert!(det.summary.contains("blocks covered"));
        // Duration-mode eval against ground truth: precision should be
        // very high end to end through the text formats.
        let table = eval(
            &det.events,
            &sim.truth,
            86_400,
            0,
            false,
            0,
            &IntervalSet::new(),
        )
        .unwrap();
        assert!(table.contains("Precision"), "{table}");
        // extract precision value from the rendering
        let line = table
            .lines()
            .find(|l| l.contains("Precision"))
            .unwrap()
            .to_string();
        let value: f64 = line
            .split("Precision")
            .nth(1)
            .unwrap()
            .trim()
            .trim_end_matches(['|', ' '])
            .trim()
            .parse()
            .unwrap();
        assert!(value > 0.98, "precision {value} via CLI pipeline");
    }

    #[test]
    fn detect_window_validation() {
        let sim = simulate("quick", 40, 6).unwrap();
        assert!(detect(&sim.observations, Some(10)).is_err());
        assert!(detect("# empty\n", None).is_err());
    }

    #[test]
    fn unknown_preset_rejected() {
        assert!(build_preset("nope", 10, 1).is_err());
        assert!(simulate("nope", 10, 1).is_err());
    }

    #[test]
    fn coverage_prints_monotone_curve() {
        let sim = simulate("quick", 40, 7).unwrap();
        let table = coverage(&sim.observations).unwrap();
        let fractions: Vec<f64> = table
            .lines()
            .skip(1)
            .map(|l| l.split_whitespace().last().unwrap().parse().unwrap())
            .collect();
        assert!(fractions.len() >= 3);
        for w in fractions.windows(2) {
            assert!(w[0] <= w[1] + 1e-9);
        }
    }

    #[test]
    fn eval_event_mode_runs() {
        let sim = simulate("table3", 30, 8).unwrap();
        let det = detect(&sim.observations, Some(86_400)).unwrap();
        let table = eval(
            &det.events,
            &sim.truth,
            86_400,
            300,
            true,
            180,
            &IntervalSet::new(),
        )
        .unwrap();
        assert!(table.contains("event"), "{table}");
        assert!(table.contains("TNR"));
    }

    /// A steady synthetic feed: four /24s, one query each every 10 s,
    /// for two days. Aggregate rate is far above the sentinel floor.
    fn steady_feed_doc() -> String {
        let mut doc = String::from("# synthetic\n");
        for t in (0..2 * 86_400).step_by(10) {
            for b in 0..4 {
                doc.push_str(&format!("{t} 10.0.{b}.0/24\n"));
            }
        }
        doc
    }

    #[test]
    fn fault_plan_and_sentinel_flow_through_detect() {
        let doc = steady_feed_doc();
        let blackout = Interval::from_secs(120_000, 121_800);
        let plan = FaultPlan::new(7).blackout(blackout);

        // Sentinel off: the blackout reads as a mass outage.
        let off = detect_with(
            &doc,
            &DetectOptions {
                fault_plan: Some(plan.clone()),
                ..DetectOptions::default()
            },
        )
        .unwrap();
        let off_events = format::parse_events(&off.events).unwrap();
        assert!(
            off_events.iter().any(|e| e.interval.overlaps(&blackout)),
            "expected false outages without the sentinel"
        );

        // Sentinel on: the span is quarantined instead.
        let on = detect_with(
            &doc,
            &DetectOptions {
                fault_plan: Some(plan),
                sentinel: Some(SentinelConfig::default()),
                ..DetectOptions::default()
            },
        )
        .unwrap();
        assert!(on.summary.contains("quarantined"), "{}", on.summary);
        let on_events = format::parse_events(&on.events).unwrap();
        assert!(
            !on_events.iter().any(|e| e.interval.overlaps(&blackout)),
            "sentinel should suppress verdicts inside the blackout"
        );
        let quarantined = format::parse_intervals(&on.quarantine).unwrap();
        assert!(quarantined.total() >= blackout.duration());
        assert!(quarantined.iter().any(|iv| iv.overlaps(&blackout)));

        // The quarantine document round-trips into eval's exclusion.
        let truth = "# none\n";
        let table = eval(&on.events, truth, 2 * 86_400, 0, false, 0, &quarantined).unwrap();
        assert!(table.contains("excluded"), "{table}");
    }

    #[test]
    fn worker_count_does_not_change_the_verdicts() {
        let doc = steady_feed_doc();
        let blackout = Interval::from_secs(120_000, 121_800);
        let run = |workers| {
            detect_with(
                &doc,
                &DetectOptions {
                    fault_plan: Some(FaultPlan::new(7).blackout(blackout)),
                    sentinel: Some(SentinelConfig::default()),
                    workers: Some(workers),
                    ..DetectOptions::default()
                },
            )
            .unwrap()
        };
        let one = run(1);
        assert!(one.summary.contains("1 workers"), "{}", one.summary);
        for workers in [2, 4] {
            let n = run(workers);
            assert_eq!(n.events, one.events, "{workers} workers");
            assert_eq!(n.quarantine, one.quarantine, "{workers} workers");
        }
        assert!(detect_with(
            &doc,
            &DetectOptions {
                workers: Some(0),
                ..DetectOptions::default()
            },
        )
        .is_err());
    }

    #[test]
    fn detect_emits_metrics_and_trace_and_status_renders_them() {
        let doc = steady_feed_doc();
        let blackout = Interval::from_secs(120_000, 121_800);
        let out = detect_with(
            &doc,
            &DetectOptions {
                fault_plan: Some(FaultPlan::new(7).blackout(blackout)),
                sentinel: Some(SentinelConfig::default()),
                workers: Some(2),
                trace: true,
                ..DetectOptions::default()
            },
        )
        .unwrap();

        // The snapshot parses and carries the headline instrument families.
        let snap = parse_prometheus(&out.metrics).unwrap();
        assert!(
            snap.sum("po_detect_arrivals_total") > 0.0,
            "{}",
            out.metrics
        );
        assert!(
            snap.sum("po_sentinel_transitions_total") > 0.0,
            "a blackout must drive at least one state transition"
        );
        assert!(
            snap.value("po_quarantine_intervals_total", &[]).unwrap() >= 1.0,
            "{}",
            out.metrics
        );
        assert!(
            snap.value("po_quarantine_seconds_total", &[]).unwrap() >= blackout.duration() as f64
        );
        assert_eq!(
            snap.type_of("po_quarantine_duration_seconds"),
            Some("histogram")
        );
        assert!(snap.sum("po_worker_busy_seconds_total") > 0.0);
        assert!(
            snap.value("po_stage_seconds_count", &[("stage", "learn")])
                .unwrap()
                >= 1.0
        );

        // Trace was requested: spans for every pipeline stage.
        let trace = out.trace.unwrap();
        for name in [
            "\"learn\"",
            "\"learn.shard\"",
            "\"plan\"",
            "\"detect.parallel\"",
        ] {
            assert!(trace.contains(name), "missing span {name} in:\n{trace}");
        }

        // And the status command renders a summary off the same snapshot.
        let rendered = status(&out.metrics).unwrap();
        assert!(rendered.contains("feed sentinel"), "{rendered}");
        assert!(rendered.contains("quarantine"), "{rendered}");
        assert!(rendered.contains("detection"), "{rendered}");
        assert!(rendered.contains("worker 0"), "{rendered}");
        assert!(rendered.contains("dark"), "{rendered}");
    }

    #[test]
    fn status_rejects_garbage_and_empty_snapshots() {
        assert!(status("not prometheus {{{").is_err());
        let err = status("other_metric 1\n").unwrap_err();
        assert!(err.to_string().contains("no passive-outage"), "{err}");
    }

    #[test]
    fn invalid_sentinel_config_is_a_command_error() {
        let doc = steady_feed_doc();
        let bad = SentinelConfig {
            bucket_secs: 0,
            ..SentinelConfig::default()
        };
        let err = detect_with(
            &doc,
            &DetectOptions {
                sentinel: Some(bad),
                ..DetectOptions::default()
            },
        )
        .unwrap_err();
        assert!(
            err.to_string().contains("invalid detector configuration"),
            "{err}"
        );
    }

    #[test]
    fn telescope_reports_intake_breakdown() {
        let clean = telescope("quick", 20, 3, 0.0).unwrap();
        assert!(clean.contains("dropped 0"), "{clean}");
        let dirty = telescope("quick", 20, 3, 0.4).unwrap();
        assert!(dirty.contains("malformed"), "{dirty}");
        let malformed: u64 = dirty
            .split("malformed ")
            .nth(1)
            .unwrap()
            .trim_start()
            .split([',', ')'])
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!(
            malformed > 0,
            "corruption should damage some payloads: {dirty}"
        );
        assert!(telescope("quick", 20, 3, 1.5).is_err());
        assert!(telescope("nope", 20, 3, 0.0).is_err());
    }

    #[test]
    fn eval_handles_one_sided_prefixes() {
        // truth has an outage on a prefix the observer never mentions
        let truth = "# ev\n10.0.0.0/24 100 800 1.000 ground-truth\n";
        let observed = "# ev\n10.0.1.0/24 100 800 0.900 passive-bayes\n";
        let table = eval(observed, truth, 86_400, 0, false, 0, &IntervalSet::new()).unwrap();
        // the missed outage is false availability, the invented one false
        // outage; both prefixes accounted for the full window
        assert!(table.contains("fa = 700"), "{table}");
        assert!(table.contains("fo = 700"), "{table}");
    }

    #[test]
    fn learn_then_warm_detect_matches_cold_detect() {
        let sim = simulate("quick", 40, 21).unwrap();
        let cold = detect(&sim.observations, Some(86_400)).unwrap();

        let learned = learn(&sim.observations, Some(86_400), Some(1)).unwrap();
        assert!(
            learned.summary.contains("fingerprint"),
            "{}",
            learned.summary
        );

        let warm = detect_with(
            &sim.observations,
            &DetectOptions {
                window_secs: Some(86_400),
                model: Some(learned.model.clone()),
                ..DetectOptions::default()
            },
        )
        .unwrap();
        assert_eq!(warm.events, cold.events, "warm start changed the verdicts");
        assert_eq!(warm.quarantine, cold.quarantine);
        assert!(warm.summary.contains("warm start"), "{}", warm.summary);
        assert!(!cold.summary.contains("warm start"));
        // The warm run's snapshot must record the store traffic.
        let snap = parse_prometheus(&warm.metrics).unwrap();
        assert_eq!(
            snap.value("po_store_warm_start_hits_total", &[]).unwrap(),
            1.0
        );
        assert_eq!(
            snap.value("po_store_bytes_read_total", &[]).unwrap(),
            learned.model.len() as f64
        );
    }

    #[test]
    fn detect_model_out_emits_a_loadable_checkpoint() {
        let sim = simulate("quick", 40, 22).unwrap();
        let out = detect_with(
            &sim.observations,
            &DetectOptions {
                window_secs: Some(86_400),
                model_out: true,
                ..DetectOptions::default()
            },
        )
        .unwrap();
        let bytes = out.model.expect("model_out must populate the checkpoint");
        assert!(model_verify(&bytes).unwrap().starts_with("ok: "));
        // It matches what `learn` would have produced byte for byte.
        let learned = learn(&sim.observations, Some(86_400), Some(1)).unwrap();
        assert_eq!(bytes, learned.model);
        let snap = parse_prometheus(&out.metrics).unwrap();
        assert_eq!(
            snap.value("po_store_bytes_written_total", &[]).unwrap(),
            bytes.len() as f64
        );
    }

    #[test]
    fn model_and_model_out_are_mutually_exclusive() {
        let sim = simulate("quick", 40, 23).unwrap();
        let learned = learn(&sim.observations, Some(86_400), Some(1)).unwrap();
        let err = detect_with(
            &sim.observations,
            &DetectOptions {
                window_secs: Some(86_400),
                model: Some(learned.model),
                model_out: true,
                ..DetectOptions::default()
            },
        )
        .unwrap_err();
        assert!(err.to_string().contains("mutually exclusive"), "{err}");
    }

    #[test]
    fn warm_detect_rejects_mismatched_window_with_a_hint() {
        let sim = simulate("quick", 40, 24).unwrap();
        let learned = learn(&sim.observations, Some(86_400), Some(1)).unwrap();
        let err = detect_with(
            &sim.observations,
            &DetectOptions {
                window_secs: Some(2 * 86_400),
                model: Some(learned.model),
                ..DetectOptions::default()
            },
        )
        .unwrap_err();
        assert!(err.to_string().contains("--window"), "{err}");
    }

    #[test]
    fn model_inspect_and_corrupt_checkpoints() {
        let sim = simulate("quick", 40, 25).unwrap();
        let learned = learn(&sim.observations, Some(86_400), Some(1)).unwrap();
        let report = model_inspect(&learned.model).unwrap();
        assert!(report.contains("fingerprint"), "{report}");
        assert!(report.contains("IPv4"), "{report}");

        // A flipped byte must surface as a typed checkpoint error, for
        // inspect, verify, and warm-start detect alike.
        let mut bad = learned.model.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0x40;
        assert!(model_inspect(&bad).is_err());
        let err = model_verify(&bad).unwrap_err();
        assert!(err.to_string().contains("model checkpoint"), "{err}");
        let err = detect_with(
            &sim.observations,
            &DetectOptions {
                window_secs: Some(86_400),
                model: Some(bad),
                ..DetectOptions::default()
            },
        )
        .unwrap_err();
        assert!(err.to_string().contains("model checkpoint"), "{err}");
    }

    #[test]
    fn model_merge_of_split_feeds_matches_whole_feed_learning() {
        // CLI windows always start at the epoch, so the CLI-reachable
        // merge case is identical windows: two halves of one feed, each
        // learned over the full window, merge by count addition into
        // exactly the checkpoint one-pass learning would produce.
        let doc = steady_feed_doc(); // two days of steady traffic
        let split = |keep: fn(u64) -> bool| -> String {
            doc.lines()
                .filter(|l| {
                    l.starts_with('#')
                        || l.split_once(' ')
                            .is_some_and(|(t, _)| keep(t.parse::<u64>().unwrap()))
                })
                .map(|l| format!("{l}\n"))
                .collect()
        };
        let day1 = split(|t| t < 86_400);
        let day2 = split(|t| t >= 86_400);
        let window = Some(2 * 86_400);

        let a = learn(&day1, window, Some(1)).unwrap();
        let b = learn(&day2, window, Some(1)).unwrap();
        let (merged, summary) = model_merge(&a.model, &b.model).unwrap();
        assert!(summary.contains("merged"), "{summary}");
        assert!(model_verify(&merged).unwrap().starts_with("ok: "));

        let whole = learn(&doc, window, Some(1)).unwrap();
        assert_eq!(merged, whole.model, "merge must equal one-pass learning");
    }
}
