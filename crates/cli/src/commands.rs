//! Compatibility facade over the per-command modules in [`crate::cmd`].
//!
//! Command logic used to live in this one file; it now lives in one
//! module per command family. Existing `outage_cli::commands::*` paths
//! keep working through these re-exports.

pub use crate::cmd::{
    build_preset, coverage, detect, detect_with, eval, explain, explain_live, federate, learn,
    model_inspect, model_merge, model_verify, serve, simulate, status, telescope, CommandError,
    DetectOptions, DetectOutput, FederateOptions, FederateOutput, LearnOutput, ServeOptions,
    ServeOutcomeSummary, ServeSource, SimulateOutput,
};
