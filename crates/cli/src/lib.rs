//! # outage-cli
//!
//! The operator-facing command line for the passive-outage pipeline:
//!
//! ```text
//! passive-outage simulate --preset table1 --num-as 120 --seed 42 \
//!     --out obs.txt --truth truth.txt
//! passive-outage detect   --obs obs.txt --out events.txt
//! passive-outage eval     --observed events.txt --truth truth.txt --window 86400
//! passive-outage coverage --obs obs.txt
//! ```
//!
//! Data flows through trivially greppable line formats (see [`format`]);
//! command logic lives in [`cmd`] (one module per command family) as
//! pure functions so the whole pipeline is unit-tested without touching
//! the filesystem; [`commands`] re-exports the same surface for
//! compatibility.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cmd;
pub mod commands;
pub mod format;

pub use commands::{
    build_preset, coverage, detect, detect_with, eval, federate, serve, simulate, telescope,
    CommandError, DetectOptions, FederateOptions, ServeOptions, ServeSource,
};
