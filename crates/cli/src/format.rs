//! Line-oriented text formats for observations and events.
//!
//! Deliberately trivial, dependency-free, and greppable:
//!
//! * **Observation lines**: `<secs> <block>` — e.g. `8632 192.0.2.0/24`
//! * **Event lines**: `<prefix> <start> <end> <confidence> <detector>` —
//!   e.g. `192.0.2.0/24 30010 37200 0.990 passive-bayes`
//! * **Interval lines**: `<start> <end>` — e.g. `43200 45180` (quarantined
//!   or otherwise excluded spans)
//!
//! Blank lines and lines starting with `#` are ignored on input, so
//! files can carry headers and comments.

use outage_types::{DetectorId, Interval, IntervalSet, Observation, OutageEvent, Prefix, UnixTime};
use std::fmt::Write as _;

/// Error with line number context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn skippable(line: &str) -> bool {
    let t = line.trim();
    t.is_empty() || t.starts_with('#')
}

/// Render one observation line.
pub fn observation_line(obs: &Observation) -> String {
    format!("{} {}", obs.time.secs(), obs.block)
}

/// Parse one observation line.
pub fn parse_observation(line: &str, lineno: usize) -> Result<Observation, ParseError> {
    let mut parts = line.split_whitespace();
    let (Some(t), Some(b), None) = (parts.next(), parts.next(), parts.next()) else {
        return Err(ParseError {
            line: lineno,
            message: format!("expected '<secs> <block>', got {line:?}"),
        });
    };
    let time: u64 = t.parse().map_err(|e| ParseError {
        line: lineno,
        message: format!("bad timestamp {t:?}: {e}"),
    })?;
    let block: Prefix = b.parse().map_err(|e| ParseError {
        line: lineno,
        message: format!("bad block {b:?}: {e}"),
    })?;
    Ok(Observation::new(UnixTime(time), block))
}

/// Parse a whole observation document (skipping comments/blanks).
pub fn parse_observations(input: &str) -> Result<Vec<Observation>, ParseError> {
    input
        .lines()
        .enumerate()
        .filter(|(_, l)| !skippable(l))
        .map(|(i, l)| parse_observation(l, i + 1))
        .collect()
}

/// Render a whole observation document.
pub fn render_observations(obs: &[Observation]) -> String {
    let mut out = String::with_capacity(obs.len() * 24);
    out.push_str("# <secs> <block>\n");
    for o in obs {
        let _ = writeln!(out, "{} {}", o.time.secs(), o.block);
    }
    out
}

/// Render one event line.
pub fn event_line(ev: &OutageEvent) -> String {
    format!(
        "{} {} {} {:.3} {}",
        ev.prefix,
        ev.interval.start.secs(),
        ev.interval.end.secs(),
        ev.confidence,
        ev.detector
    )
}

fn detector_from_str(s: &str) -> Option<DetectorId> {
    Some(match s {
        "passive-bayes" => DetectorId::PassiveBayes,
        "trinocular" => DetectorId::Trinocular,
        "chocolatine" => DetectorId::Chocolatine,
        "ripe-atlas" => DetectorId::RipeAtlas,
        "ground-truth" => DetectorId::GroundTruth,
        _ => return None,
    })
}

/// Parse one event line.
pub fn parse_event(line: &str, lineno: usize) -> Result<OutageEvent, ParseError> {
    let parts: Vec<&str> = line.split_whitespace().collect();
    if parts.len() != 5 {
        return Err(ParseError {
            line: lineno,
            message: format!(
                "expected '<prefix> <start> <end> <confidence> <detector>', got {line:?}"
            ),
        });
    }
    let err = |message: String| ParseError {
        line: lineno,
        message,
    };
    let prefix: Prefix = parts[0]
        .parse()
        .map_err(|e| err(format!("bad prefix: {e}")))?;
    let start: u64 = parts[1]
        .parse()
        .map_err(|e| err(format!("bad start: {e}")))?;
    let end: u64 = parts[2].parse().map_err(|e| err(format!("bad end: {e}")))?;
    if end < start {
        return Err(err(format!("end {end} before start {start}")));
    }
    let confidence: f64 = parts[3]
        .parse()
        .map_err(|e| err(format!("bad confidence: {e}")))?;
    if !(0.0..=1.0).contains(&confidence) {
        return Err(err(format!("confidence {confidence} outside [0,1]")));
    }
    let detector = detector_from_str(parts[4])
        .ok_or_else(|| err(format!("unknown detector {:?}", parts[4])))?;
    Ok(OutageEvent {
        prefix,
        interval: Interval::from_secs(start, end),
        confidence,
        detector,
    })
}

/// Parse a whole event document.
pub fn parse_events(input: &str) -> Result<Vec<OutageEvent>, ParseError> {
    input
        .lines()
        .enumerate()
        .filter(|(_, l)| !skippable(l))
        .map(|(i, l)| parse_event(l, i + 1))
        .collect()
}

/// Render a whole event document.
pub fn render_events(events: &[OutageEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 48);
    out.push_str("# <prefix> <start> <end> <confidence> <detector>\n");
    for ev in events {
        let _ = writeln!(out, "{}", event_line(ev));
    }
    out
}

/// Render an interval set, one `<start> <end>` line per interval.
pub fn render_intervals(set: &IntervalSet) -> String {
    let mut out = String::from("# <start> <end>\n");
    for iv in set.iter() {
        let _ = writeln!(out, "{} {}", iv.start.secs(), iv.end.secs());
    }
    out
}

/// Parse one interval line.
pub fn parse_interval(line: &str, lineno: usize) -> Result<Interval, ParseError> {
    let mut parts = line.split_whitespace();
    let (Some(s), Some(e), None) = (parts.next(), parts.next(), parts.next()) else {
        return Err(ParseError {
            line: lineno,
            message: format!("expected '<start> <end>', got {line:?}"),
        });
    };
    let err = |message: String| ParseError {
        line: lineno,
        message,
    };
    let start: u64 = s
        .parse()
        .map_err(|pe| err(format!("bad start {s:?}: {pe}")))?;
    let end: u64 = e
        .parse()
        .map_err(|pe| err(format!("bad end {e:?}: {pe}")))?;
    if end < start {
        return Err(err(format!("end {end} before start {start}")));
    }
    Ok(Interval::from_secs(start, end))
}

/// Parse a whole interval document into a (merged) set.
pub fn parse_intervals(input: &str) -> Result<IntervalSet, ParseError> {
    let mut set = IntervalSet::new();
    for (i, l) in input.lines().enumerate() {
        if skippable(l) {
            continue;
        }
        set.insert(parse_interval(l, i + 1)?);
    }
    Ok(set)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observation_roundtrip() {
        let obs = vec![
            Observation::new(UnixTime(0), "10.0.0.0/24".parse().unwrap()),
            Observation::new(UnixTime(86_399), "2001:db8::/48".parse().unwrap()),
        ];
        let doc = render_observations(&obs);
        assert_eq!(parse_observations(&doc).unwrap(), obs);
    }

    #[test]
    fn event_roundtrip() {
        let events = vec![OutageEvent {
            prefix: "192.0.2.0/24".parse().unwrap(),
            interval: Interval::from_secs(30_010, 37_200),
            confidence: 0.99,
            detector: DetectorId::PassiveBayes,
        }];
        let doc = render_events(&events);
        let back = parse_events(&doc).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].prefix, events[0].prefix);
        assert_eq!(back[0].interval, events[0].interval);
        assert_eq!(back[0].detector, events[0].detector);
        assert!((back[0].confidence - 0.99).abs() < 1e-9);
    }

    #[test]
    fn interval_roundtrip_merges_overlaps() {
        let doc = "# spans\n100 200\n\n150 300\n400 500\n";
        let set = parse_intervals(doc).unwrap();
        assert_eq!(set.intervals().len(), 2);
        assert_eq!(set.total(), 300);
        let rendered = render_intervals(&set);
        assert_eq!(parse_intervals(&rendered).unwrap(), set);
    }

    #[test]
    fn bad_interval_lines_rejected() {
        assert!(parse_interval("5 3", 1).is_err()); // end < start
        assert!(parse_interval("1 2 3", 1).is_err()); // arity
        assert!(parse_interval("x 2", 1).is_err()); // not a number
        let err = parse_intervals("1 2\nbroken\n").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let doc = "# header\n\n100 10.0.0.0/24\n   \n200 10.0.1.0/24\n";
        let obs = parse_observations(doc).unwrap();
        assert_eq!(obs.len(), 2);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let doc = "100 10.0.0.0/24\nbogus line here\n";
        let err = parse_observations(doc).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn bad_event_fields_rejected() {
        assert!(parse_event("10.0.0.0/24 5 3 0.9 trinocular", 1).is_err()); // end<start
        assert!(parse_event("10.0.0.0/24 1 2 1.5 trinocular", 1).is_err()); // conf>1
        assert!(parse_event("10.0.0.0/24 1 2 0.5 martian", 1).is_err()); // detector
        assert!(parse_event("10.0.0.0/24 1 2 0.5", 1).is_err()); // arity
        assert!(parse_event("10.0.0.0 1 2 0.5 trinocular", 1).is_err()); // prefix
    }

    #[test]
    fn every_detector_id_roundtrips() {
        for d in [
            DetectorId::PassiveBayes,
            DetectorId::Trinocular,
            DetectorId::Chocolatine,
            DetectorId::RipeAtlas,
            DetectorId::GroundTruth,
        ] {
            assert_eq!(detector_from_str(&d.to_string()), Some(d));
        }
    }
}
