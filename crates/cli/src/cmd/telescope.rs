//! `telescope`: wire-format intake breakdown for a scenario's feed.

use super::{build_preset, CommandError};
use outage_dnswire::Telescope;
use outage_netsim::{FaultPlan, PacketFeed};

/// `telescope`: render a scenario's feed as wire-format DNS packets,
/// optionally corrupt some payloads, and report the intake breakdown the
/// parsing telescope saw.
pub fn telescope(
    preset: &str,
    num_as: u32,
    seed: u64,
    corrupt_prob: f64,
) -> Result<String, CommandError> {
    if !(0.0..=1.0).contains(&corrupt_prob) {
        return Err(CommandError(format!(
            "--corrupt {corrupt_prob} outside [0, 1]"
        )));
    }
    let scenario = build_preset(preset, num_as, seed)?;
    let observations = scenario.collect_observations();
    let mut feed = PacketFeed::new(seed);
    let packets: Vec<_> = feed.render_all(observations.iter().copied()).collect();
    let plan = FaultPlan::new(seed).corrupt(corrupt_prob);
    let registry = outage_obs::Registry::new();
    let mut tel = Telescope::new().with_metrics(&registry);
    let accepted = tel.observe_all(plan.corrupt_packets(packets)).count();
    let stats = tel.stats();
    debug_assert_eq!(accepted as u64, stats.accepted);
    debug_assert_eq!(
        registry
            .value("po_telescope_packets_total", &[("result", "accepted")])
            .unwrap_or(0.0) as u64,
        stats.accepted
    );
    Ok(format!(
        "preset {} ({} ASes, seed {}, corrupt {:.3}): {}",
        preset, num_as, seed, corrupt_prob, stats
    ))
}
