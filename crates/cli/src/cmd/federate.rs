//! `federate`: shard the block universe across N vantages, run one
//! isolated engine (and optional sentinel) per vantage, and fuse the
//! per-vantage verdicts into a single global event timeline.

use super::{detection_window, CommandError};
use crate::format;
use outage_core::{
    fuse_models, DetectorConfig, FederationRouter, FusionPolicy, SentinelConfig, VantagePlan,
    VantageReport, VantageRunner,
};
use outage_netsim::FaultPlan;
use outage_obs::Registry;
use outage_store::{encode_checkpoint, Checkpoint};
use outage_types::Observation;

/// Knobs for [`federate`].
#[derive(Debug, Clone)]
pub struct FederateOptions {
    /// Explicit window end (seconds); defaults to the last observation
    /// rounded up to a whole day.
    pub window_secs: Option<u64>,
    /// Number of vantages to shard across.
    pub vantages: usize,
    /// Fraction of partition keys corroborated by a second vantage.
    pub overlap: f64,
    /// How multi-vantage verdicts fuse (`union` or `quorum:K`).
    pub fusion: FusionPolicy,
    /// Guard every vantage's detection pass with a feed sentinel.
    pub sentinel: Option<SentinelConfig>,
    /// Sensor faults to inject before detection.
    pub fault_plan: Option<FaultPlan>,
    /// Restrict the fault plan to one vantage's feed (`None` faults
    /// every feed — a global sensor incident).
    pub fault_vantage: Option<usize>,
    /// Fuse the per-vantage learned models into one canonical global
    /// checkpoint ([`FederateOutput::model`]).
    pub model_out: bool,
}

impl Default for FederateOptions {
    fn default() -> FederateOptions {
        FederateOptions {
            window_secs: None,
            vantages: 3,
            overlap: 0.0,
            fusion: FusionPolicy::Union,
            sentinel: None,
            fault_plan: None,
            fault_vantage: None,
            model_out: false,
        }
    }
}

/// Output of [`federate`].
#[derive(Debug)]
pub struct FederateOutput {
    /// The fused global event document (same format as `detect`).
    pub events: String,
    /// Per-event vantage attribution, one line per fused event.
    pub attribution: String,
    /// Prometheus snapshot of the `po_federation_*` families.
    pub metrics: String,
    /// Encoded checkpoint of the fused global model (only with
    /// [`FederateOptions::model_out`]).
    pub model: Option<Vec<u8>>,
    /// Human summary: one line per vantage plus the fused shape.
    pub summary: String,
}

/// `federate`: run a multi-vantage detection over one observation
/// document and fuse the result.
pub fn federate(
    observations_doc: &str,
    opts: &FederateOptions,
) -> Result<FederateOutput, CommandError> {
    let observations = format::parse_observations(observations_doc)?;
    if observations.is_empty() {
        return Err(CommandError("no observations in input".into()));
    }
    if opts.fault_vantage.is_some() && opts.fault_plan.is_none() {
        return Err(CommandError(
            "--fault-vantage without --fault-plan: there is no fault to scope".into(),
        ));
    }
    if let Some(v) = opts.fault_vantage {
        if v >= opts.vantages {
            return Err(CommandError(format!(
                "--fault-vantage {v} out of range: the plan has {} vantages (0..{})",
                opts.vantages,
                opts.vantages - 1
            )));
        }
    }
    let window = detection_window(&observations, opts.window_secs)?;
    let plan = VantagePlan::new(opts.vantages)?.with_overlap(opts.overlap)?;
    let shards = plan.split(&observations);

    let mut reports: Vec<VantageReport> = Vec::with_capacity(opts.vantages);
    let mut models = Vec::new();
    let mut faulted_note = String::new();
    for (v, shard) in shards.iter().enumerate() {
        let faulted;
        let ingest: &[Observation] = match &opts.fault_plan {
            Some(fault) if opts.fault_vantage.is_none() || opts.fault_vantage == Some(v) => {
                let mut applied = fault.apply_to_vec(shard);
                applied.sort_unstable();
                faulted_note = format!(
                    " [faults on {}: {} s marked faulted]",
                    match opts.fault_vantage {
                        Some(v) => format!("vantage {v}"),
                        None => "every vantage".to_string(),
                    },
                    fault.faulted().total()
                );
                faulted = applied;
                &faulted
            }
            _ => shard,
        };
        let mut runner = VantageRunner::new(v, DetectorConfig::default())?;
        if let Some(cfg) = opts.sentinel {
            runner = runner.with_sentinel(cfg);
        }
        if opts.model_out {
            let model = runner.learn(ingest, window, 1);
            reports.push(runner.run_with_model(&model, ingest, window)?);
            models.push(model);
        } else {
            reports.push(runner.run(ingest, window)?);
        }
    }

    let fused = FederationRouter::new(opts.fusion).assemble(&reports)?;
    let registry = Registry::new();
    fused.export_metrics(&registry);

    let model = if opts.model_out {
        let global = fuse_models(&models)?;
        Some(encode_checkpoint(&Checkpoint {
            fingerprint: DetectorConfig::default().fingerprint(),
            model: global,
        }))
    } else {
        None
    };

    let attribution: String = fused
        .events
        .iter()
        .map(|g| {
            let vantages: Vec<String> = g.vantages.iter().map(usize::to_string).collect();
            format!(
                "{} [{}, {}) vantages {} of {}\n",
                g.event.prefix,
                g.event.interval.start.secs(),
                g.event.interval.end.secs(),
                vantages.join(","),
                g.sources
            )
        })
        .collect();

    let mut summary = format!(
        "federation over {}: {} observations, {}, fusion {}{}\n",
        window,
        observations.len(),
        plan,
        opts.fusion,
        faulted_note
    );
    for v in &fused.vantages {
        let health = match v.feed_health {
            Some(h) => h.as_str(),
            None => "n/a",
        };
        summary.push_str(&format!(
            "  vantage {}: {} units over {} blocks, {} events, {} strays, sentinel {}, \
             quarantined {} span(s) / {} s\n",
            v.vantage,
            v.units,
            v.covered_blocks,
            v.events,
            v.strays,
            health,
            v.quarantined_spans,
            v.quarantined_secs
        ));
    }
    summary.push_str(&format!(
        "  fused: {} events, {} multi-vantage unit(s)\n",
        fused.events.len(),
        fused.fused_units
    ));

    Ok(FederateOutput {
        events: format::render_events(&fused.outage_events()),
        attribution,
        metrics: registry.render_prometheus(),
        model,
        summary,
    })
}
