//! `explain`: render the decision provenance of one outage event — the
//! belief trajectory, expectation shape, and open/close context that
//! made the detector fire.
//!
//! Two sources, one record format:
//!
//! * an evidence document written by `detect --evidence-out` (JSONL,
//!   one record per line), or
//! * a live serve daemon, via `GET /events/{id}/explain`.
//!
//! Both yield byte-identical JSON for the same event, because every
//! surface renders [`outage_core::EventEvidence::to_json`].

use super::CommandError;
use outage_obs::Value;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Render one event's evidence from a JSONL evidence document. With
/// `json` the raw record line is returned; otherwise a human-readable
/// report. Unknown ids list what the document does contain.
pub fn explain(evidence_doc: &str, id: &str, json: bool) -> Result<String, CommandError> {
    let mut available = Vec::new();
    for (lineno, line) in evidence_doc.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let v = Value::parse(line)
            .map_err(|e| CommandError(format!("evidence line {}: {e}", lineno + 1)))?;
        let rec_id = v
            .get("id")
            .and_then(Value::as_str)
            .ok_or_else(|| CommandError(format!("evidence line {}: no \"id\"", lineno + 1)))?;
        if rec_id == id {
            return Ok(if json {
                format!("{v}\n")
            } else {
                explain_pretty(&v)
            });
        }
        available.push(rec_id.to_string());
    }
    Err(unknown_id(id, &available))
}

/// Render one event's evidence fetched from a live serve daemon at
/// `base_url` (e.g. `http://127.0.0.1:7700`).
pub fn explain_live(base_url: &str, id: &str, json: bool) -> Result<String, CommandError> {
    let body = http_get(base_url, &format!("/events/{id}/explain"))?;
    let v = Value::parse(&body)
        .map_err(|e| CommandError(format!("explain response from {base_url}: {e}")))?;
    Ok(if json {
        format!("{v}\n")
    } else {
        explain_pretty(&v)
    })
}

fn unknown_id(id: &str, available: &[String]) -> CommandError {
    if available.is_empty() {
        return CommandError(format!(
            "no evidence for event {id:?}: the document is empty \
             (was the run's evidence tier off, or the unit not sampled?)"
        ));
    }
    let shown = available.len().min(10);
    CommandError(format!(
        "no evidence for event {id:?}; the document has {} records, e.g.:\n  {}",
        available.len(),
        available[..shown].join("\n  ")
    ))
}

/// One bounded HTTP/1.1 GET, mirroring the webhook transport: connect,
/// write the request, read to EOF (the server closes per request).
fn http_get(base_url: &str, path: &str) -> Result<String, CommandError> {
    let hostport = base_url
        .strip_prefix("http://")
        .ok_or_else(|| CommandError(format!("--url must be http://HOST:PORT, got {base_url:?}")))?
        .trim_end_matches('/');
    let mut stream = TcpStream::connect(hostport)
        .map_err(|e| CommandError(format!("connecting {hostport}: {e}")))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .and_then(|()| stream.set_write_timeout(Some(Duration::from_secs(5))))
        .map_err(|e| CommandError(format!("socket setup: {e}")))?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: {hostport}\r\nConnection: close\r\n\r\n"
    )
    .map_err(|e| CommandError(format!("sending request: {e}")))?;
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .map_err(|e| CommandError(format!("reading response: {e}")))?;
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|c| c.parse().ok())
        .ok_or_else(|| CommandError(format!("malformed response from {hostport}")))?;
    let body = response
        .split("\r\n\r\n")
        .nth(1)
        .unwrap_or_default()
        .to_string();
    if status != 200 {
        return Err(CommandError(format!(
            "{hostport} returned {status}: {}",
            body.trim()
        )));
    }
    Ok(body)
}

fn num(v: &Value, key: &str) -> f64 {
    v.get(key).and_then(Value::as_f64).unwrap_or(f64::NAN)
}

fn int(v: &Value, key: &str) -> u64 {
    v.get(key).and_then(Value::as_u64).unwrap_or(0)
}

fn opt_time(v: &Value, key: &str) -> String {
    match v.get(key).and_then(Value::as_u64) {
        Some(t) => format!("t={t}"),
        None => "none".to_string(),
    }
}

/// Human rendering of one evidence record.
fn explain_pretty(v: &Value) -> String {
    let mut out = String::new();
    let id = v.get("id").and_then(Value::as_str).unwrap_or("?");
    out.push_str(&format!("event {id}\n"));
    out.push_str(&format!(
        "  interval    {} .. {}  ({} s){}\n",
        int(v, "start"),
        int(v, "end"),
        int(v, "duration_secs"),
        if v.get("censored").and_then(Value::as_bool) == Some(true) {
            "  [censored: ran into the window end]"
        } else {
            ""
        },
    ));
    out.push_str(&format!(
        "  verdict     confidence {:.3}, opened by the {} path, bin width {} s\n",
        num(v, "confidence"),
        v.get("trigger").and_then(Value::as_str).unwrap_or("?"),
        int(v, "bin_width_secs"),
    ));
    out.push_str(&format!(
        "  belief      {:.4} at open, {:.4} at the deepest point\n",
        num(v, "belief_at_open"),
        num(v, "min_belief"),
    ));
    out.push_str(&format!(
        "  arrivals    last before: {}, first after: {}\n",
        opt_time(v, "last_arrival_before"),
        opt_time(v, "first_arrival_after"),
    ));
    let quarantined = int(v, "quarantined_secs");
    out.push_str(&format!(
        "  provenance  {} raw detection(s) merged, {} s quarantined\n",
        int(v, "merged"),
        quarantined,
    ));
    if quarantined > 0 {
        out.push_str("              (part of this span overlapped a sensor fault)\n");
    }
    let trajectory = v.get("trajectory").and_then(Value::as_arr).unwrap_or(&[]);
    if trajectory.is_empty() {
        out.push_str("  trajectory  (no closed bins before open: gap-path event)\n");
    } else {
        out.push_str(&format!(
            "  trajectory  last {} closed bins before open (oldest first):\n",
            trajectory.len()
        ));
        out.push_str("              bin start    arrivals   expected   belief\n");
        for s in trajectory {
            out.push_str(&format!(
                "              {:>9}   {:>8}   {:>8.2}   {:.4}\n",
                int(s, "bin_start"),
                int(s, "arrivals"),
                num(s, "expected"),
                num(s, "belief"),
            ));
        }
    }
    if let Some(shape) = v.get("shape").and_then(Value::as_arr) {
        let mults: Vec<String> = shape
            .iter()
            .map(|m| format!("{:.2}", m.as_f64().unwrap_or(f64::NAN)))
            .collect();
        out.push_str(&format!(
            "  shape       hour-of-day multipliers: {}\n",
            mults.join(" ")
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cmd::{detect_with, DetectOptions};
    use outage_core::EvidenceConfig;
    use outage_types::{Observation, Prefix, UnixTime};

    fn obs_doc() -> String {
        let block: Prefix = "192.0.2.0/24".parse().unwrap();
        let obs: Vec<Observation> = (0..86_400u64)
            .step_by(10)
            .filter(|t| !(30_000..37_200).contains(t))
            .map(|t| Observation::new(UnixTime(t), block))
            .collect();
        crate::format::render_observations(&obs)
    }

    fn evidence_doc() -> String {
        let out = detect_with(
            &obs_doc(),
            &DetectOptions {
                evidence: EvidenceConfig::Full,
                ..DetectOptions::default()
            },
        )
        .unwrap();
        out.evidence.expect("full tier emits a document")
    }

    #[test]
    fn explains_a_detected_event_from_the_document() {
        let doc = evidence_doc();
        let first = Value::parse(doc.lines().next().unwrap()).unwrap();
        let id = first.get("id").unwrap().as_str().unwrap().to_string();
        assert!(id.starts_with("192.0.2.0/24@"), "{id}");

        let pretty = explain(&doc, &id, false).unwrap();
        assert!(pretty.contains(&format!("event {id}")), "{pretty}");
        assert!(pretty.contains("trajectory"), "{pretty}");
        assert!(pretty.contains("belief"), "{pretty}");

        // --json returns the record line verbatim
        let json = explain(&doc, &id, true).unwrap();
        assert_eq!(json.trim_end(), doc.lines().next().unwrap());
    }

    #[test]
    fn unknown_id_lists_what_exists() {
        let doc = evidence_doc();
        let err = explain(&doc, "10.0.0.0/8@1", false).unwrap_err();
        assert!(err.0.contains("192.0.2.0/24@"), "{}", err.0);
    }

    #[test]
    fn off_tier_has_no_document() {
        let out = detect_with(&obs_doc(), &DetectOptions::default()).unwrap();
        assert!(out.evidence.is_none());
        let err = explain("", "192.0.2.0/24@30010", false).unwrap_err();
        assert!(err.0.contains("empty"), "{}", err.0);
    }
}
