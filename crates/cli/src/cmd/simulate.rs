//! `simulate`: generate a scenario's passive feed and ground truth.

use super::CommandError;
use crate::format;
use outage_netsim::Scenario;
use outage_types::{DetectorId, OutageEvent};

/// Scenario presets nameable from the command line.
pub fn build_preset(name: &str, num_as: u32, seed: u64) -> Result<Scenario, CommandError> {
    Ok(match name {
        "quick" => Scenario::quick(seed),
        "table1" => Scenario::table1(num_as, seed),
        "table3" => Scenario::table3(num_as, seed),
        "tradeoff" => Scenario::tradeoff(num_as, seed),
        "ipv6-day" => Scenario::ipv6_day(num_as, seed),
        "paper-scale" => Scenario::paper_scale(num_as, seed),
        other => {
            return Err(CommandError(format!(
                "unknown preset {other:?} \
                 (try quick, table1, table3, tradeoff, ipv6-day, paper-scale)"
            )))
        }
    })
}

/// Output of `simulate`.
pub struct SimulateOutput {
    /// Observation document.
    pub observations: String,
    /// Ground-truth event document.
    pub truth: String,
    /// Human summary for stderr.
    pub summary: String,
}

/// `simulate`: generate a scenario's passive feed and its ground truth.
pub fn simulate(preset: &str, num_as: u32, seed: u64) -> Result<SimulateOutput, CommandError> {
    let scenario = build_preset(preset, num_as, seed)?;
    let observations = scenario.collect_observations();
    let truth_events: Vec<OutageEvent> = {
        let mut evs: Vec<OutageEvent> = scenario
            .schedule
            .blocks_with_outages()
            .flat_map(|(p, set)| {
                set.iter().map(|iv| OutageEvent {
                    prefix: *p,
                    interval: *iv,
                    confidence: 1.0,
                    detector: DetectorId::GroundTruth,
                })
            })
            .collect();
        evs.sort_by_key(|e| (e.interval.start, e.prefix));
        evs
    };
    let summary = format!(
        "preset {} ({} ASes, seed {}): {} observations from {} blocks, {} ground-truth outages over {}",
        preset,
        num_as,
        seed,
        observations.len(),
        scenario.internet.blocks().len(),
        truth_events.len(),
        scenario.window(),
    );
    Ok(SimulateOutput {
        observations: format::render_observations(&observations),
        truth: format::render_events(&truth_events),
        summary,
    })
}
