//! `serve`: run detection as a long-lived, crash-safe daemon.
//!
//! Glue between the pure service layer in `outage_core::service` and
//! the operator's world: a paced replay source over a scenario or an
//! observation file, a JSON view for the HTTP surface, a real TCP
//! webhook transport, and the flag-driven wiring that assembles them.
//!
//! The daemon's failure model lives in the core layer; this module only
//! decides *what* to run, never *whether to keep running*.

use super::CommandError;
use crate::format;
use outage_core::service::{
    run_supervised, AlertNotifier, AlertPolicy, ObservationSource, ServeShared, ServeStatus,
    SourceFault, SourceItem, SupervisorConfig, WebhookTransport,
};
use outage_core::{
    Daemon, DaemonConfig, DetectorConfig, EvidenceConfig, HttpServer, SentinelConfig, ServeView,
    StreamingMonitor, VantagePlan,
};
use outage_netsim::{FaultPlan, ReplayClock};
use outage_obs::Obs;
use outage_store::{read_serve_checkpoint, FileCheckpointSink};
use outage_types::{Observation, OutageEvent, UnixTime};
use std::fmt::Write as _;
use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::AtomicBool;
use std::sync::mpsc::sync_channel;
use std::sync::Arc;
use std::time::Duration;

/// Largest batch a single pull releases; keeps the ingest queue
/// responsive even at extreme acceleration.
const BATCH_CAP: usize = 4_096;

/// Everything `serve` needs, already parsed and validated by the
/// binary's flag layer.
#[derive(Debug)]
pub struct ServeOptions {
    /// The observation feed to re-live.
    pub source: ServeSource,
    /// Simulated seconds per wall second (clamped to ≥ 1 by the clock).
    pub accel: f64,
    /// Detection epoch length, seconds (validated by the monitor).
    pub epoch_secs: u64,
    /// HTTP listen address (`127.0.0.1:0` picks a free port).
    pub listen: String,
    /// Write the bound address here once listening (test/CI handshake).
    pub port_file: Option<PathBuf>,
    /// Checkpoint file; absent → no persistence.
    pub checkpoint: Option<PathBuf>,
    /// Publish an epoch-roll checkpoint every N rolls.
    pub checkpoint_every_rolls: u32,
    /// Warm-restart from the checkpoint file instead of starting cold.
    pub resume: bool,
    /// Write the final event document here on shutdown.
    pub events_out: Option<PathBuf>,
    /// Write a final Prometheus metrics snapshot here on shutdown.
    pub metrics_out: Option<PathBuf>,
    /// Attach a feed sentinel (quarantine instead of false outages).
    pub sentinel: Option<SentinelConfig>,
    /// Degrade the feed before replaying it (testing the failure model).
    pub fault_plan: Option<FaultPlan>,
    /// Webhook URL (`http://host:port/path`) for event alerts.
    pub webhook: Option<String>,
    /// Sustained webhook rate, alerts/second.
    pub webhook_rate: f64,
    /// Webhook burst capacity.
    pub webhook_burst: u32,
    /// Ingest queue depth before load shedding kicks in.
    pub queue_capacity: usize,
    /// Drop observations after this simulated time (bounded runs).
    pub until: Option<u64>,
    /// Evidence tier: per-event decision provenance for `/events/{id}/explain`.
    pub evidence: EvidenceConfig,
    /// Run this many per-vantage engines behind one HTTP surface
    /// (1 = the classic single-engine daemon).
    pub vantages: usize,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            source: ServeSource::Preset {
                name: "quick".to_string(),
                num_as: 40,
                seed: 42,
            },
            accel: 3_600.0,
            epoch_secs: 86_400,
            listen: "127.0.0.1:0".to_string(),
            port_file: None,
            checkpoint: None,
            checkpoint_every_rolls: 1,
            resume: false,
            events_out: None,
            metrics_out: None,
            sentinel: None,
            fault_plan: None,
            webhook: None,
            webhook_rate: 1.0,
            webhook_burst: 5,
            queue_capacity: 1_024,
            until: None,
            evidence: EvidenceConfig::Off,
            vantages: 1,
        }
    }
}

/// Where the daemon's observations come from.
#[derive(Debug)]
pub enum ServeSource {
    /// Generate a netsim scenario in-process.
    Preset {
        /// Preset name (`quick`, `table1`, …).
        name: String,
        /// Autonomous-system count for sized presets.
        num_as: u32,
        /// Scenario seed.
        seed: u64,
    },
    /// Replay an observation document (already read to a string).
    ObsDoc {
        /// The document text.
        text: String,
        /// Label for `/status` (usually the file path).
        label: String,
    },
}

/// What a finished daemon run looked like, for the operator's stderr.
#[derive(Debug)]
pub struct ServeOutcomeSummary {
    /// One human line.
    pub summary: String,
}

/// A paced replay of an in-memory, time-sorted observation vector:
/// observations are released when their simulated instant arrives on
/// the (accelerated) wall clock.
struct ReplaySource {
    observations: Vec<Observation>,
    pos: usize,
    clock: ReplayClock,
    /// Never tick past the data: keeps the engine's high-water mark —
    /// and therefore the finish time — identical across restarts.
    last_time: UnixTime,
    label: String,
}

impl ReplaySource {
    /// A source over `observations[pos..]`, paced from the first
    /// remaining observation's instant at `accel`×.
    fn new(observations: Vec<Observation>, pos: usize, accel: f64, label: String) -> ReplaySource {
        let last_time = observations
            .last()
            .map(|o| o.time)
            .unwrap_or(UnixTime::EPOCH);
        let sim_start = observations.get(pos).map(|o| o.time).unwrap_or(last_time);
        ReplaySource {
            observations,
            pos,
            clock: ReplayClock::new(sim_start, accel),
            last_time,
            label,
        }
    }
}

impl ObservationSource for ReplaySource {
    fn pull(&mut self) -> Result<SourceItem, SourceFault> {
        if self.pos >= self.observations.len() {
            return Ok(SourceItem::Exhausted);
        }
        let now = self.clock.now();
        let due = self.observations[self.pos..]
            .iter()
            .take_while(|o| o.time <= now)
            .take(BATCH_CAP)
            .count();
        if due == 0 {
            return Ok(SourceItem::Idle(now.min(self.last_time)));
        }
        let batch = self.observations[self.pos..self.pos + due].to_vec();
        self.pos += due;
        Ok(SourceItem::Batch(batch))
    }

    fn describe(&self) -> String {
        format!(
            "{} ({} observations, {:.0}x)",
            self.label,
            self.observations.len(),
            self.clock.accel()
        )
    }
}

/// The HTTP surface's window into the daemon.
struct StatusView {
    shared: ServeShared,
}

impl ServeView for StatusView {
    fn metrics(&self) -> String {
        self.shared.registry().render_prometheus()
    }

    fn status_json(&self) -> String {
        status_json(&self.shared.status())
    }

    fn events_json(&self) -> String {
        events_json(&self.shared.events())
    }

    fn healthz(&self) -> (bool, String) {
        if self.shared.is_healthy() {
            (true, "ok".to_string())
        } else {
            (false, "engine not running".to_string())
        }
    }

    fn explain_json(&self, id: &str) -> Option<String> {
        self.shared.explain_json(id)
    }
}

/// The HTTP surface's window into a federated daemon: one entry per
/// vantage, aggregated on demand.
struct FederationView {
    vantages: Vec<ServeShared>,
}

impl FederationView {
    /// Build the `po_federation_*` snapshot from the live per-vantage
    /// daemons (same families [`outage_core::FederatedReport`] exports
    /// for batch runs, so `status` renders both).
    fn federation_registry(&self) -> outage_obs::Registry {
        let registry = outage_obs::Registry::new();
        let statuses: Vec<ServeStatus> = self.vantages.iter().map(ServeShared::status).collect();
        let max_high_water = statuses
            .iter()
            .map(|s| s.high_water_unix)
            .max()
            .unwrap_or(0);
        registry
            .gauge("po_federation_vantages", &[])
            .set(self.vantages.len() as f64);
        registry
            .counter("po_federation_fused_events_total", &[])
            .add(statuses.iter().map(|s| s.events_total).sum());
        // The serve partition is disjoint: no unit is covered twice.
        registry.gauge("po_federation_fused_units", &[]).set(0.0);
        for (v, (shared, s)) in self.vantages.iter().zip(&statuses).enumerate() {
            let id = v.to_string();
            let labels: &[(&str, &str)] = &[("vantage", id.as_str())];
            let health = match s.feed_health.as_deref() {
                Some("healthy") => Some(0.0),
                Some("degraded") => Some(1.0),
                Some("dark") => Some(2.0),
                _ => None,
            };
            if let Some(h) = health {
                registry
                    .gauge("po_federation_vantage_health", labels)
                    .set(h);
            }
            registry
                .gauge("po_federation_covered_blocks", labels)
                .set(s.covered_blocks as f64);
            registry
                .counter("po_federation_events_total", labels)
                .add(s.events_total);
            let value = |name: &str| shared.registry().value(name, &[]).unwrap_or(0.0);
            registry
                .counter("po_federation_quarantine_intervals_total", labels)
                .add(value("po_stream_quarantine_closed_total") as u64);
            registry
                .counter("po_federation_quarantine_seconds_total", labels)
                .add(value("po_quarantine_duration_seconds_sum") as u64);
            registry
                .gauge("po_federation_watermark_lag_seconds", labels)
                .set(max_high_water.saturating_sub(s.high_water_unix) as f64);
        }
        registry
    }
}

impl ServeView for FederationView {
    fn metrics(&self) -> String {
        self.federation_registry().render_prometheus()
    }

    fn status_json(&self) -> String {
        let per_vantage: Vec<String> = self
            .vantages
            .iter()
            .map(|s| status_json(&s.status()))
            .collect();
        let events_total: u64 = self.vantages.iter().map(|s| s.status().events_total).sum();
        format!(
            "{{\"federation\":true,\"vantages\":{},\"events_total\":{},\"vantage_status\":[{}]}}",
            self.vantages.len(),
            events_total,
            per_vantage.join(",")
        )
    }

    fn events_json(&self) -> String {
        let mut tagged: Vec<(usize, OutageEvent)> = Vec::new();
        for (v, shared) in self.vantages.iter().enumerate() {
            tagged.extend(shared.events().into_iter().map(|e| (v, e)));
        }
        tagged.sort_by_key(|(_, e)| (e.interval.start, e.prefix));
        let mut out = String::from("[");
        for (i, (v, e)) in tagged.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"prefix\":\"{}\",\"start\":{},\"end\":{},\"confidence\":{:.6},\
                 \"detector\":\"{}\",\"vantage\":{}}}",
                e.prefix,
                e.interval.start.secs(),
                e.interval.end.secs(),
                e.confidence,
                e.detector,
                v
            );
        }
        out.push(']');
        out
    }

    fn healthz(&self) -> (bool, String) {
        let dead = self
            .vantages
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.is_healthy())
            .map(|(v, _)| v.to_string())
            .collect::<Vec<_>>();
        if dead.is_empty() {
            (true, "ok".to_string())
        } else {
            (
                false,
                format!("vantage engines not running: {}", dead.join(",")),
            )
        }
    }

    fn explain_json(&self, id: &str) -> Option<String> {
        self.vantages.iter().find_map(|s| s.explain_json(id))
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn json_opt_u64(v: Option<u64>) -> String {
    match v {
        Some(n) => n.to_string(),
        None => "null".to_string(),
    }
}

fn json_opt_str(v: &Option<String>) -> String {
    match v {
        Some(s) => format!("\"{}\"", json_escape(s)),
        None => "null".to_string(),
    }
}

/// Render a [`ServeStatus`] as one stable JSON object.
fn status_json(s: &ServeStatus) -> String {
    format!(
        concat!(
            "{{\"source\":\"{}\",\"source_state\":\"{}\",\"live\":{},",
            "\"epoch_secs\":{},\"start_unix\":{},\"high_water_unix\":{},",
            "\"live_epoch_start_unix\":{},\"covered_blocks\":{},",
            "\"down_units\":{},\"quarantined\":{},\"feed_health\":{},",
            "\"events_total\":{},\"checkpoints_total\":{},",
            "\"last_checkpoint_unix\":{},\"last_checkpoint_reason\":{},",
            "\"queue_dropped\":{},\"source_faults\":{},",
            "\"alerts\":{{\"sent\":{},\"dropped\":{},\"retries\":{},\"failed\":{}}},",
            "\"shutting_down\":{}}}"
        ),
        json_escape(&s.source),
        json_escape(&s.source_state),
        s.live,
        s.epoch_secs,
        s.start_unix,
        s.high_water_unix,
        json_opt_u64(s.live_epoch_start_unix),
        s.covered_blocks,
        s.down_units,
        s.quarantined,
        json_opt_str(&s.feed_health),
        s.events_total,
        s.checkpoints_total,
        json_opt_u64(s.last_checkpoint_unix),
        json_opt_str(&s.last_checkpoint_reason),
        s.queue_dropped,
        s.source_faults,
        s.alerts.sent,
        s.alerts.dropped,
        s.alerts.retries,
        s.alerts.failed,
        s.shutting_down,
    )
}

/// Render the completed-event log as a JSON array.
fn events_json(events: &[OutageEvent]) -> String {
    let mut out = String::from("[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"prefix\":\"{}\",\"start\":{},\"end\":{},\"confidence\":{:.6},\"detector\":\"{}\"}}",
            e.prefix,
            e.interval.start.secs(),
            e.interval.end.secs(),
            e.confidence,
            e.detector
        );
    }
    out.push(']');
    out
}

/// A minimal HTTP/1.1 POST over a plain socket — the only webhook
/// transport the container can offer without external crates.
struct TcpWebhook {
    host: String,
    port: u16,
    path: String,
}

impl TcpWebhook {
    /// Accepts `http://host:port/path` (port and path optional).
    fn parse(url: &str) -> Result<TcpWebhook, CommandError> {
        let rest = url
            .strip_prefix("http://")
            .ok_or_else(|| CommandError(format!("webhook URL must be http:// — got {url:?}")))?;
        let (authority, path) = match rest.find('/') {
            Some(i) => (&rest[..i], rest[i..].to_string()),
            None => (rest, "/".to_string()),
        };
        let (host, port) = match authority.rsplit_once(':') {
            Some((h, p)) => {
                let port: u16 = p
                    .parse()
                    .map_err(|e| CommandError(format!("webhook port {p:?}: {e}")))?;
                (h.to_string(), port)
            }
            None => (authority.to_string(), 80),
        };
        if host.is_empty() {
            return Err(CommandError(format!("webhook URL {url:?} has no host")));
        }
        Ok(TcpWebhook { host, port, path })
    }
}

impl WebhookTransport for TcpWebhook {
    fn deliver(&mut self, payload: &str) -> Result<(), String> {
        let addr = (self.host.as_str(), self.port);
        let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
        let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
        let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
        let request = format!(
            "POST {} HTTP/1.1\r\nHost: {}\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n{}",
            self.path,
            self.host,
            payload.len(),
            payload
        );
        stream
            .write_all(request.as_bytes())
            .map_err(|e| format!("write: {e}"))?;
        let mut head = [0u8; 512];
        let n = stream.read(&mut head).map_err(|e| format!("read: {e}"))?;
        let line = String::from_utf8_lossy(&head[..n]);
        let status = line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse::<u16>().ok())
            .ok_or_else(|| format!("unparseable response: {line:?}"))?;
        if (200..300).contains(&status) {
            Ok(())
        } else {
            Err(format!("webhook returned HTTP {status}"))
        }
    }
}

/// Materialize, degrade, sort, and bound the feed.
fn build_observations(opts: &ServeOptions) -> Result<(Vec<Observation>, String), CommandError> {
    let (mut observations, label) = match &opts.source {
        ServeSource::Preset { name, num_as, seed } => {
            let scenario = super::build_preset(name, *num_as, *seed)?;
            (
                scenario.collect_observations(),
                format!("preset {name} (seed {seed})"),
            )
        }
        ServeSource::ObsDoc { text, label } => (format::parse_observations(text)?, label.clone()),
    };
    if let Some(plan) = &opts.fault_plan {
        observations = plan.apply_to_vec(&observations);
    }
    observations.sort();
    if let Some(until) = opts.until {
        observations.retain(|o| o.time.secs() <= until);
    }
    if observations.is_empty() {
        return Err(CommandError(
            "no observations to serve (empty feed after faults/--until)".into(),
        ));
    }
    Ok((observations, label))
}

/// Build the monitor: warm from a checkpoint on `--resume`, cold
/// otherwise. Returns the monitor, any checkpointed events to pre-seed,
/// and the replay cursor.
fn build_monitor(
    opts: &ServeOptions,
    config: &DetectorConfig,
    first_obs: UnixTime,
    shared: &ServeShared,
) -> Result<(StreamingMonitor, Vec<OutageEvent>, Option<UnixTime>), CommandError> {
    if opts.resume {
        let path = opts.checkpoint.as_ref().ok_or_else(|| {
            CommandError("--resume needs --checkpoint to know where to resume from".into())
        })?;
        // Mirror the save side: resume reads get a span and land in the
        // same duration histogram, so a slow restore is visible in the
        // final metrics snapshot rather than just as a late first epoch.
        let mut sp = outage_obs::span!(shared.obs(), "checkpoint.load");
        sp.field("path", path.display().to_string());
        let t0 = std::time::Instant::now();
        let cp = read_serve_checkpoint(path)?;
        shared
            .registry()
            .histogram(
                "po_serve_checkpoint_seconds",
                &[("op", "load")],
                outage_obs::LATENCY_BUCKETS,
            )
            .observe(t0.elapsed().as_secs_f64());
        cp.require_fingerprint(config.fingerprint())?;
        if cp.epoch_secs != opts.epoch_secs {
            return Err(CommandError(format!(
                "checkpoint epoch is {} s but --epoch asked for {} s; pass --epoch {}",
                cp.epoch_secs, opts.epoch_secs, cp.epoch_secs
            )));
        }
        let monitor = match (&cp.model, cp.live) {
            (Some(model), true) => {
                StreamingMonitor::from_model(config.clone(), model, cp.cursor, cp.epoch_secs)?
            }
            _ => StreamingMonitor::new(config.clone(), cp.cursor, cp.epoch_secs)?,
        };
        Ok((monitor, cp.events, Some(cp.cursor)))
    } else {
        let aligned = UnixTime(first_obs.secs() / opts.epoch_secs.max(1) * opts.epoch_secs.max(1));
        let monitor = StreamingMonitor::new(config.clone(), aligned, opts.epoch_secs)?;
        Ok((monitor, Vec::new(), None))
    }
}

/// Run the daemon to completion (source exhaustion or shutdown signal).
///
/// This call blocks for the daemon's whole life; the binary hands it
/// the process-wide shutdown flag so SIGINT/SIGTERM drain gracefully.
pub fn serve(
    opts: &ServeOptions,
    shutdown: &'static AtomicBool,
) -> Result<ServeOutcomeSummary, CommandError> {
    if opts.vantages > 1 {
        return serve_federated(opts, shutdown);
    }
    let (observations, label) = build_observations(opts)?;
    // The evidence tier rides the config but stays out of its
    // fingerprint, so `--resume` accepts checkpoints from any tier.
    let config = DetectorConfig {
        evidence: opts.evidence,
        ..DetectorConfig::default()
    };
    let first_obs = observations[0].time;
    let shared = ServeShared::new(Obs::new());
    let (mut monitor, prior_events, resume_cursor) =
        build_monitor(opts, &config, first_obs, &shared)?;
    if let Some(s) = opts.sentinel {
        monitor = monitor.with_sentinel(s)?;
    }

    monitor = monitor.with_obs(shared.obs().clone());

    // Replay resumes at the checkpoint cursor: everything before it is
    // already folded into the warm model and the checkpointed events.
    let pos = match resume_cursor {
        Some(cursor) => observations.partition_point(|o| o.time < cursor),
        None => 0,
    };
    let source = ReplaySource::new(observations, pos, opts.accel, label);
    shared.set_source_description(&source.describe());

    let (tx, rx) = sync_channel(opts.queue_capacity.max(1));
    let sup_shared = shared.clone();
    let sup_cfg = SupervisorConfig::default();
    let ingest = std::thread::Builder::new()
        .name("po-ingest".to_string())
        .spawn(move || run_supervised(Box::new(source), tx, shutdown, &sup_cfg, &sup_shared))
        .map_err(|e| CommandError(format!("spawning ingest thread: {e}")))?;

    let view = Arc::new(StatusView {
        shared: shared.clone(),
    });
    let http = HttpServer::bind(opts.listen.as_str(), view)
        .map_err(|e| CommandError(format!("binding {}: {e}", opts.listen)))?;
    let addr = http.local_addr();
    if let Some(pf) = &opts.port_file {
        outage_store::atomic_write(pf, format!("{addr}\n").as_bytes())
            .map_err(|e| CommandError(format!("writing {}: {e}", pf.display())))?;
    }
    eprintln!("serve: listening on http://{addr} (metrics, status, events, healthz)");

    let dcfg = DaemonConfig {
        checkpoint_every_rolls: opts.checkpoint_every_rolls.max(1),
        ..DaemonConfig::default()
    };
    let mut daemon = Daemon::new(monitor, rx, shared.clone(), dcfg);
    if let Some(cp) = &opts.checkpoint {
        daemon = daemon.with_sink(Box::new(FileCheckpointSink::new(cp.clone())));
    }
    if !prior_events.is_empty() {
        daemon = daemon.with_prior_events(prior_events);
    }
    if let Some(url) = &opts.webhook {
        let transport = Box::new(TcpWebhook::parse(url)?);
        let policy = AlertPolicy {
            rate_per_sec: opts.webhook_rate,
            burst: opts.webhook_burst,
            ..AlertPolicy::default()
        };
        daemon = daemon.with_notifier(AlertNotifier::new(transport, policy));
    }

    let outcome = daemon.run(shutdown);
    let _ = ingest.join();

    if let Some(path) = &opts.events_out {
        let doc = format::render_events(&outcome.events);
        outage_store::atomic_write(path, doc.as_bytes())
            .map_err(|e| CommandError(format!("writing {}: {e}", path.display())))?;
    }
    if let Some(path) = &opts.metrics_out {
        let doc = shared.registry().render_prometheus();
        outage_store::atomic_write(path, doc.as_bytes())
            .map_err(|e| CommandError(format!("writing {}: {e}", path.display())))?;
    }
    http.shutdown();

    let status = shared.status();
    let summary = format!(
        "serve: {} events ({} checkpoints, {} quarantined s, {} shed, {} source faults), \
         finished to t={}",
        outcome.events.len(),
        outcome.checkpoints_published,
        outcome.quarantined.total(),
        status.queue_dropped,
        status.source_faults,
        outcome.end.secs(),
    );
    Ok(ServeOutcomeSummary { summary })
}

/// Federated serve: one engine, ingest thread, sentinel, and obs scope
/// per vantage, all behind a single HTTP surface. The feed is split by
/// the same [`VantagePlan`] the batch `federate` command uses, so a
/// feed fault injected at one vantage stays confined to its shard.
fn serve_federated(
    opts: &ServeOptions,
    shutdown: &'static AtomicBool,
) -> Result<ServeOutcomeSummary, CommandError> {
    if opts.checkpoint.is_some() || opts.resume {
        return Err(CommandError(
            "--checkpoint/--resume are single-vantage features; \
             a federated serve has one engine per vantage and no shared cursor"
                .into(),
        ));
    }
    let (observations, label) = build_observations(opts)?;
    let config = DetectorConfig {
        evidence: opts.evidence,
        ..DetectorConfig::default()
    };
    let plan =
        VantagePlan::new(opts.vantages).map_err(|e| CommandError(format!("federation: {e}")))?;
    let shards = plan.split(&observations);

    let mut shareds: Vec<ServeShared> = Vec::with_capacity(opts.vantages);
    let mut ingests = Vec::new();
    let mut daemons = Vec::new();
    for (v, shard) in shards.into_iter().enumerate() {
        let shared = ServeShared::new(Obs::new());
        let first_obs = shard.first().map(|o| o.time).unwrap_or(UnixTime::EPOCH);
        let epoch = opts.epoch_secs.max(1);
        let aligned = UnixTime(first_obs.secs() / epoch * epoch);
        let mut monitor = StreamingMonitor::new(config.clone(), aligned, opts.epoch_secs)?;
        if let Some(s) = opts.sentinel {
            monitor = monitor.with_sentinel(s)?;
        }
        monitor = monitor.with_obs(shared.obs().clone());

        let source = ReplaySource::new(shard, 0, opts.accel, format!("vantage {v}: {label}"));
        shared.set_source_description(&source.describe());
        let (tx, rx) = sync_channel(opts.queue_capacity.max(1));
        let sup_shared = shared.clone();
        let sup_cfg = SupervisorConfig::default();
        let ingest = std::thread::Builder::new()
            .name(format!("po-ingest-{v}"))
            .spawn(move || run_supervised(Box::new(source), tx, shutdown, &sup_cfg, &sup_shared))
            .map_err(|e| CommandError(format!("spawning ingest thread {v}: {e}")))?;
        ingests.push(ingest);

        let mut daemon = Daemon::new(monitor, rx, shared.clone(), DaemonConfig::default());
        if let Some(url) = &opts.webhook {
            let transport = Box::new(TcpWebhook::parse(url)?);
            let policy = AlertPolicy {
                rate_per_sec: opts.webhook_rate,
                burst: opts.webhook_burst,
                ..AlertPolicy::default()
            };
            daemon = daemon.with_notifier(AlertNotifier::new(transport, policy));
        }
        let engine = std::thread::Builder::new()
            .name(format!("po-engine-{v}"))
            .spawn(move || daemon.run(shutdown))
            .map_err(|e| CommandError(format!("spawning engine thread {v}: {e}")))?;
        daemons.push(engine);
        shareds.push(shared);
    }

    let view = Arc::new(FederationView {
        vantages: shareds.clone(),
    });
    let http = HttpServer::bind(opts.listen.as_str(), view.clone())
        .map_err(|e| CommandError(format!("binding {}: {e}", opts.listen)))?;
    let addr = http.local_addr();
    if let Some(pf) = &opts.port_file {
        outage_store::atomic_write(pf, format!("{addr}\n").as_bytes())
            .map_err(|e| CommandError(format!("writing {}: {e}", pf.display())))?;
    }
    eprintln!(
        "serve: listening on http://{addr} ({} vantage engines; metrics, status, events, healthz)",
        shareds.len()
    );

    let mut outcomes = Vec::new();
    for (v, engine) in daemons.into_iter().enumerate() {
        let outcome = engine
            .join()
            .map_err(|_| CommandError(format!("vantage {v} engine panicked")))?;
        outcomes.push(outcome);
    }
    for ingest in ingests {
        let _ = ingest.join();
    }

    if let Some(path) = &opts.events_out {
        // The shards are disjoint, so the fused (union) global timeline
        // is the sorted concatenation of the per-vantage event logs.
        let mut events: Vec<OutageEvent> = outcomes.iter().flat_map(|o| o.events.clone()).collect();
        events.sort_by_key(|e| (e.interval.start, e.prefix));
        let doc = format::render_events(&events);
        outage_store::atomic_write(path, doc.as_bytes())
            .map_err(|e| CommandError(format!("writing {}: {e}", path.display())))?;
    }
    if let Some(path) = &opts.metrics_out {
        let doc = view.federation_registry().render_prometheus();
        outage_store::atomic_write(path, doc.as_bytes())
            .map_err(|e| CommandError(format!("writing {}: {e}", path.display())))?;
    }
    http.shutdown();

    let events_total: usize = outcomes.iter().map(|o| o.events.len()).sum();
    let quarantined_total: u64 = outcomes.iter().map(|o| o.quarantined.total()).sum();
    let end = outcomes
        .iter()
        .map(|o| o.end)
        .max()
        .unwrap_or(UnixTime::EPOCH);
    let summary = format!(
        "serve: federated {} vantages, {} events ({} quarantined s), finished to t={}",
        outcomes.len(),
        events_total,
        quarantined_total,
        end.secs(),
    );
    Ok(ServeOutcomeSummary { summary })
}

#[cfg(test)]
mod tests {
    use super::*;
    use outage_types::{Interval, Prefix};

    /// Result-unwrapping helper that keeps the command modules free of
    /// `unwrap`/`expect` call sites (a repo-wide invariant for `cmd/*`).
    fn ok<T, E: std::fmt::Debug>(r: Result<T, E>) -> T {
        match r {
            Ok(v) => v,
            Err(e) => panic!("unexpected error: {e:?}"),
        }
    }

    fn p(s: &str) -> Prefix {
        ok(s.parse())
    }

    #[test]
    fn replay_source_releases_in_order_and_exhausts() {
        let obs: Vec<Observation> = (0..100u64)
            .map(|t| Observation::new(UnixTime(t), p("10.0.0.0/24")))
            .collect();
        // Enormous acceleration: everything is due immediately.
        let mut src = ReplaySource::new(obs.clone(), 0, 1e12, "test".into());
        let mut got = Vec::new();
        loop {
            match ok(src.pull()) {
                SourceItem::Batch(b) => got.extend(b),
                SourceItem::Idle(_) => std::thread::sleep(Duration::from_millis(1)),
                SourceItem::Exhausted => break,
            }
        }
        assert_eq!(got, obs);
    }

    #[test]
    fn replay_source_resume_position_skips_history() {
        let obs: Vec<Observation> = (0..100u64)
            .map(|t| Observation::new(UnixTime(t), p("10.0.0.0/24")))
            .collect();
        let cursor = UnixTime(40);
        let pos = obs.partition_point(|o| o.time < cursor);
        let mut src = ReplaySource::new(obs, pos, 1e12, "test".into());
        let first = loop {
            match ok(src.pull()) {
                SourceItem::Batch(b) => break b[0],
                SourceItem::Idle(_) => std::thread::sleep(Duration::from_millis(1)),
                SourceItem::Exhausted => panic!("exhausted before any batch"),
            }
        };
        assert_eq!(first.time, cursor);
    }

    #[test]
    fn replay_source_goes_idle_until_the_next_instant_is_due() {
        // Real-time clock, next observation hours away: the source must
        // report Idle (with a sane "now") instead of blocking or lying.
        let obs = vec![
            Observation::new(UnixTime(0), p("10.0.0.0/24")),
            Observation::new(UnixTime(36_000), p("10.0.0.0/24")),
        ];
        let mut src = ReplaySource::new(obs, 0, 1.0, "test".into());
        match ok(src.pull()) {
            SourceItem::Batch(b) => assert_eq!(b[0].time, UnixTime(0)),
            other => panic!("expected the first batch, got {other:?}"),
        }
        match ok(src.pull()) {
            SourceItem::Idle(now) => assert!(now < UnixTime(36_000)),
            other => panic!("expected Idle, got {other:?}"),
        }
    }

    #[test]
    fn webhook_url_parsing_accepts_and_rejects() {
        let w = ok(TcpWebhook::parse("http://127.0.0.1:8080/hook"));
        assert_eq!(
            (w.host.as_str(), w.port, w.path.as_str()),
            ("127.0.0.1", 8080, "/hook")
        );
        let w = ok(TcpWebhook::parse("http://alerts.example.com"));
        assert_eq!((w.port, w.path.as_str()), (80, "/"));
        assert!(TcpWebhook::parse("https://secure.example.com/x").is_err());
        assert!(TcpWebhook::parse("http://:99/x").is_err());
        assert!(TcpWebhook::parse("http://h:notaport/x").is_err());
    }

    #[test]
    fn status_json_is_well_formed() {
        let mut s = ServeStatus {
            source: "preset \"quick\"".to_string(),
            source_state: "running".to_string(),
            live: true,
            epoch_secs: 3_600,
            ..ServeStatus::default()
        };
        s.feed_health = Some("healthy".to_string());
        let j = status_json(&s);
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"source\":\"preset \\\"quick\\\"\""));
        assert!(j.contains("\"live\":true"));
        assert!(j.contains("\"feed_health\":\"healthy\""));
        assert!(j.contains("\"live_epoch_start_unix\":null"));
    }

    #[test]
    fn events_json_renders_an_array() {
        let events = vec![OutageEvent {
            prefix: p("192.0.2.0/24"),
            interval: Interval::from_secs(100, 200),
            confidence: 0.75,
            detector: outage_types::DetectorId::PassiveBayes,
        }];
        let j = events_json(&events);
        assert!(j.starts_with('[') && j.ends_with(']'));
        assert!(j.contains("\"prefix\":\"192.0.2.0/24\""));
        assert!(j.contains("\"start\":100"));
        assert_eq!(events_json(&[]), "[]");
    }

    #[test]
    fn build_observations_applies_until_and_rejects_empty() {
        let doc = "0 10.0.0.0/24\n100 10.0.0.0/24\n900 10.0.0.0/24\n";
        let opts = ServeOptions {
            source: ServeSource::ObsDoc {
                text: doc.to_string(),
                label: "doc".to_string(),
            },
            until: Some(500),
            ..ServeOptions::default()
        };
        let (obs, _) = ok(build_observations(&opts));
        assert_eq!(obs.len(), 2);

        let opts = ServeOptions {
            source: ServeSource::ObsDoc {
                text: doc.to_string(),
                label: "doc".to_string(),
            },
            until: Some(0),
            ..ServeOptions::default()
        };
        // until=0 keeps the t=0 observation; an empty doc is the error.
        assert_eq!(ok(build_observations(&opts)).0.len(), 1);
        let opts = ServeOptions {
            source: ServeSource::ObsDoc {
                text: "# empty\n".to_string(),
                label: "doc".to_string(),
            },
            ..ServeOptions::default()
        };
        assert!(build_observations(&opts).is_err());
    }

    #[test]
    fn fault_plan_blackout_thins_the_feed() {
        let doc: String = (0..1_000u64)
            .map(|t| format!("{t} 10.0.0.0/24\n"))
            .collect();
        let plan = FaultPlan::new(7).blackout(Interval::from_secs(200, 800));
        let opts = ServeOptions {
            source: ServeSource::ObsDoc {
                text: doc,
                label: "doc".to_string(),
            },
            fault_plan: Some(plan),
            ..ServeOptions::default()
        };
        let (obs, _) = ok(build_observations(&opts));
        assert!(obs.len() < 1_000);
        assert!(obs.iter().all(|o| !(200..800).contains(&o.time.secs())));
    }
}
