//! `eval`: score an observed event document against ground truth.

use super::CommandError;
use crate::format;
use outage_eval::{duration_table, event_table, DurationMatrix, EventMatrix};
use outage_types::{Interval, IntervalSet, OutageEvent, Prefix, Timeline, UnixTime};
use std::collections::HashMap;

/// Fold an event document into per-prefix timelines over a window.
fn timelines_from_events(events: &[OutageEvent], window: Interval) -> HashMap<Prefix, Timeline> {
    let mut downs: HashMap<Prefix, IntervalSet> = HashMap::new();
    for ev in events {
        downs.entry(ev.prefix).or_default().insert(ev.interval);
    }
    downs
        .into_iter()
        .map(|(p, set)| (p, Timeline::from_down(window, set)))
        .collect()
}

/// `eval`: compare two event documents (observation vs truth) over the
/// prefixes present in either, within an explicit window. Spans in
/// `excluded` (e.g. sentinel quarantine) are scored for neither side.
pub fn eval(
    observed_doc: &str,
    truth_doc: &str,
    window_secs: u64,
    min_secs: u64,
    event_mode: bool,
    tolerance: u64,
    excluded: &IntervalSet,
) -> Result<String, CommandError> {
    let observed = format::parse_events(observed_doc)?;
    let truth = format::parse_events(truth_doc)?;
    let window = Interval::new(UnixTime::EPOCH, UnixTime(window_secs));
    let obs_tl = timelines_from_events(&observed, window);
    let tru_tl = timelines_from_events(&truth, window);

    // Population: union of prefixes (a prefix absent from a document is
    // all-up there).
    let mut prefixes: Vec<Prefix> = obs_tl.keys().chain(tru_tl.keys()).copied().collect();
    prefixes.sort_unstable();
    prefixes.dedup();
    let all_up = Timeline::all_up(window);
    let exclusion_note = if excluded.is_empty() {
        String::new()
    } else {
        format!(", {} s excluded", excluded.total())
    };

    if event_mode {
        let mut m = EventMatrix::default();
        for p in &prefixes {
            let o = obs_tl.get(p).unwrap_or(&all_up);
            let t = tru_tl.get(p).unwrap_or(&all_up);
            m += EventMatrix::of_excluding(o, t, min_secs, tolerance, excluded);
        }
        Ok(event_table(
            &format!(
                "event-matched comparison ({} prefixes, ≥{} s, ±{} s{})",
                prefixes.len(),
                min_secs,
                tolerance,
                exclusion_note
            ),
            &m,
        ))
    } else {
        let mut m = DurationMatrix::default();
        for p in &prefixes {
            let o = obs_tl.get(p).unwrap_or(&all_up);
            let t = tru_tl.get(p).unwrap_or(&all_up);
            m += DurationMatrix::of_excluding(o, t, min_secs, excluded);
        }
        Ok(duration_table(
            &format!(
                "duration-weighted comparison ({} prefixes, ≥{} s{})",
                prefixes.len(),
                min_secs,
                exclusion_note
            ),
            &m,
        ))
    }
}
