//! Per-command implementations, kept I/O-free for testability: each
//! command takes parsed inputs and returns the text it would print /
//! write. One module per command family; shared plumbing (errors,
//! window resolution, worker counts) lives here.

mod coverage;
mod detect;
mod eval;
mod explain;
mod federate;
mod learn;
mod model;
mod serve;
mod simulate;
mod status;
mod telescope;

pub use self::coverage::coverage;
pub use self::detect::{detect, detect_with, DetectOptions, DetectOutput};
pub use self::eval::eval;
pub use self::explain::{explain, explain_live};
pub use self::federate::{federate, FederateOptions, FederateOutput};
pub use self::learn::{learn, LearnOutput};
pub use self::model::{model_inspect, model_merge, model_verify};
pub use self::serve::{serve, ServeOptions, ServeOutcomeSummary, ServeSource};
pub use self::simulate::{build_preset, simulate, SimulateOutput};
pub use self::status::status;
pub use self::telescope::telescope;

use crate::format;
use outage_core::ConfigError;
use outage_store::StoreError;
use outage_types::{durations, Interval, Observation, UnixTime};

/// Command error (bad arguments or bad input data).
#[derive(Debug)]
pub struct CommandError(pub String);

impl std::fmt::Display for CommandError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CommandError {}

impl From<format::ParseError> for CommandError {
    fn from(e: format::ParseError) -> Self {
        CommandError(e.to_string())
    }
}

impl From<ConfigError> for CommandError {
    fn from(e: ConfigError) -> Self {
        CommandError(format!("invalid detector configuration: {e}"))
    }
}

impl From<StoreError> for CommandError {
    fn from(e: StoreError) -> Self {
        CommandError(format!("model checkpoint: {e}"))
    }
}

impl From<outage_core::ModelError> for CommandError {
    fn from(e: outage_core::ModelError) -> Self {
        CommandError(format!("model merge: {e}"))
    }
}

impl From<outage_core::FederationError> for CommandError {
    fn from(e: outage_core::FederationError) -> Self {
        CommandError(format!("federation: {e}"))
    }
}

/// The window a document is detected (and learned) over: explicit
/// seconds, or the last observation rounded up to a whole day.
pub(crate) fn detection_window(
    observations: &[Observation],
    window_secs: Option<u64>,
) -> Result<Interval, CommandError> {
    let Some(max_t) = observations.iter().map(|o| o.time.secs()).max() else {
        return Err(CommandError("no observations in input".into()));
    };
    let window_end = window_secs.unwrap_or_else(|| max_t.div_ceil(durations::DAY) * durations::DAY);
    if window_end <= max_t && window_secs.is_some() {
        return Err(CommandError(format!(
            "--window {window_end} does not cover the last observation at {max_t}"
        )));
    }
    Ok(Interval::new(UnixTime::EPOCH, UnixTime(window_end)))
}

/// Worker-count resolution shared by `learn` and `detect`.
pub(crate) fn resolve_workers(workers: Option<usize>) -> Result<usize, CommandError> {
    let workers = workers.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    });
    if workers == 0 {
        return Err(CommandError("--workers must be at least 1".into()));
    }
    Ok(workers)
}
