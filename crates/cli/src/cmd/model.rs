//! `model`: inspect, verify, and merge checkpoint files.

use super::CommandError;
use outage_core::LearnedModel;
use outage_store::{decode_checkpoint, encode_checkpoint, Checkpoint};
use outage_types::AddrFamily;

/// `model inspect`: human-readable view of a checkpoint's header and
/// shape (fully validates the file along the way).
pub fn model_inspect(bytes: &[u8]) -> Result<String, CommandError> {
    let checkpoint = decode_checkpoint(bytes)?;
    let model = &checkpoint.model;
    let v4 = model
        .index()
        .prefixes()
        .iter()
        .filter(|p| p.family() == AddrFamily::V4)
        .count();
    let v6 = model.len() - v4;
    let total_events: u64 = model.indexed().histories().iter().map(|h| h.total).sum();
    let shaped = model
        .indexed()
        .histories()
        .iter()
        .filter(|h| h.shape_estimated)
        .count();
    Ok(format!(
        "model checkpoint ({} bytes, format v{})\n\
         \x20 fingerprint   {:#018x}\n\
         \x20 window        {} ({} hour rows)\n\
         \x20 blocks        {} ({v4} IPv4, {v6} IPv6; {shaped} with estimated diurnal shape)\n\
         \x20 arrivals      {total_events}\n",
        bytes.len(),
        outage_store::VERSION,
        checkpoint.fingerprint,
        model.window(),
        model.hours(),
        model.len(),
    ))
}

/// `model verify`: full structural validation (CRCs, section
/// consistency, arena/history agreement). Returns a one-line bill of
/// health; any corruption surfaces as the typed store error.
pub fn model_verify(bytes: &[u8]) -> Result<String, CommandError> {
    let checkpoint = decode_checkpoint(bytes)?;
    Ok(format!(
        "ok: {} bytes, {} blocks over {}, fingerprint {:#018x}",
        bytes.len(),
        checkpoint.model.len(),
        checkpoint.model.window(),
        checkpoint.fingerprint,
    ))
}

/// `model merge`: combine two checkpoints over identical or adjacent
/// history windows into one. Both must carry the same config
/// fingerprint — models learned under different configurations do not
/// mix.
pub fn model_merge(a_bytes: &[u8], b_bytes: &[u8]) -> Result<(Vec<u8>, String), CommandError> {
    let a = decode_checkpoint(a_bytes)?;
    let b = decode_checkpoint(b_bytes)?;
    if a.fingerprint != b.fingerprint {
        return Err(CommandError(format!(
            "checkpoints were learned under different configurations \
             ({:#018x} vs {:#018x}) and cannot be merged",
            a.fingerprint, b.fingerprint
        )));
    }
    let merged = LearnedModel::merge(&a.model, &b.model)?;
    let summary = format!(
        "merged {} + {} blocks over {} + {} into {} blocks over {}",
        a.model.len(),
        b.model.len(),
        a.model.window(),
        b.model.window(),
        merged.len(),
        merged.window(),
    );
    let encoded = encode_checkpoint(&Checkpoint {
        fingerprint: a.fingerprint,
        model: merged,
    });
    Ok((encoded, summary))
}
