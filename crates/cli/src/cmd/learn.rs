//! `learn`: the history pass alone, producing a model checkpoint.

use super::{detection_window, resolve_workers, CommandError};
use crate::format;
use outage_core::{DetectorConfig, PassiveDetector};
use outage_store::{encode_checkpoint, Checkpoint};

/// Output of `learn`.
#[derive(Debug)]
pub struct LearnOutput {
    /// The encoded model checkpoint (for `--model-out`).
    pub model: Vec<u8>,
    /// Human summary.
    pub summary: String,
}

/// `learn`: run only the history pass over an observation document and
/// produce a model checkpoint for later warm-start detection or
/// incremental merging.
pub fn learn(
    observations_doc: &str,
    window_secs: Option<u64>,
    workers: Option<usize>,
) -> Result<LearnOutput, CommandError> {
    let observations = format::parse_observations(observations_doc)?;
    if observations.is_empty() {
        return Err(CommandError("no observations in input".into()));
    }
    let window = detection_window(&observations, window_secs)?;
    let workers = resolve_workers(workers)?;
    let detector = PassiveDetector::try_new(DetectorConfig::default())?;
    let model = detector.learn_model(&observations, window, workers);
    let summary = format!(
        "learned {} block histories from {} observations over {} ({} workers, fingerprint {:#018x})",
        model.len(),
        observations.len(),
        window,
        workers,
        detector.config().fingerprint(),
    );
    let encoded = encode_checkpoint(&Checkpoint {
        fingerprint: detector.config().fingerprint(),
        model,
    });
    Ok(LearnOutput {
        model: encoded,
        summary,
    })
}
