//! `status`: a human health summary from a metrics snapshot.

use super::CommandError;
use outage_obs::{parse_prometheus, Snapshot};

/// Label value of `key` on a sample, if present.
fn label<'a>(s: &'a outage_obs::Sample, key: &str) -> Option<&'a str> {
    s.labels
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v.as_str())
}

/// `status`: render a human health summary from a `--metrics-out`
/// Prometheus snapshot.
pub fn status(snapshot_text: &str) -> Result<String, CommandError> {
    let snap = parse_prometheus(snapshot_text)
        .map_err(|e| CommandError(format!("metrics snapshot: {e}")))?;
    let mut out = String::new();

    status_sentinel(&snap, &mut out);
    status_quarantine(&snap, &mut out);
    status_detection(&snap, &mut out);
    status_stages(&snap, &mut out);
    status_router(&snap, &mut out);
    status_serve(&snap, &mut out);
    status_federation(&snap, &mut out);
    status_alerts(&snap, &mut out);
    status_bench(&snap, &mut out);
    status_evidence(&snap, &mut out);

    if out.is_empty() {
        return Err(CommandError(
            "snapshot holds no passive-outage (po_*) metrics".into(),
        ));
    }
    Ok(out)
}

fn status_sentinel(snap: &Snapshot, out: &mut String) {
    let Some(health) = snap.value("po_sentinel_health", &[]) else {
        return;
    };
    let state = match health as i64 {
        0 => "healthy",
        1 => "degraded",
        2 => "dark",
        _ => "unknown",
    };
    out.push_str("feed sentinel\n");
    out.push_str(&format!("  final state     {state}\n"));
    if let Some(buckets) = snap.value("po_sentinel_buckets_total", &[]) {
        let unhealthy = snap
            .value("po_sentinel_unhealthy_buckets_total", &[])
            .unwrap_or(0.0);
        out.push_str(&format!(
            "  judged buckets  {buckets:.0} ({unhealthy:.0} unhealthy)\n"
        ));
    }
    let transitions: Vec<String> = snap
        .matching("po_sentinel_transitions_total")
        .into_iter()
        .filter(|s| s.value > 0.0)
        .filter_map(|s| {
            Some(format!(
                "{}->{} {:.0}",
                label(s, "from")?,
                label(s, "to")?,
                s.value
            ))
        })
        .collect();
    out.push_str(&format!(
        "  transitions     {}\n",
        if transitions.is_empty() {
            "none".to_string()
        } else {
            transitions.join(", ")
        }
    ));
    let dwell: Vec<String> = snap
        .matching("po_sentinel_time_in_state_seconds_total")
        .into_iter()
        .filter(|s| s.value > 0.0)
        .filter_map(|s| Some(format!("{} {:.0} s", label(s, "state")?, s.value)))
        .collect();
    if !dwell.is_empty() {
        out.push_str(&format!("  time in state   {}\n", dwell.join(", ")));
    }
}

fn status_quarantine(snap: &Snapshot, out: &mut String) {
    let spans = snap.value("po_quarantine_intervals_total", &[]);
    let secs = snap.value("po_quarantine_seconds_total", &[]);
    if spans.is_none() && secs.is_none() {
        return;
    }
    out.push_str("quarantine\n");
    out.push_str(&format!(
        "  spans           {:.0} totalling {:.0} s\n",
        spans.unwrap_or(0.0),
        secs.unwrap_or(0.0)
    ));
}

fn status_detection(snap: &Snapshot, out: &mut String) {
    let Some(arrivals) = snap.value("po_detect_arrivals_total", &[]) else {
        return;
    };
    out.push_str("detection\n");
    let units = snap.value("po_detect_units", &[]).unwrap_or(0.0);
    let covered = snap.value("po_detect_covered_blocks", &[]).unwrap_or(0.0);
    let strays = snap.value("po_detect_strays_total", &[]).unwrap_or(0.0);
    out.push_str(&format!(
        "  arrivals        {arrivals:.0} over {units:.0} units ({covered:.0} blocks covered, {strays:.0} strays)\n"
    ));
    let bins = snap
        .value("po_detect_verdicts_total", &[("path", "bin")])
        .unwrap_or(0.0);
    let gaps = snap
        .value("po_detect_verdicts_total", &[("path", "gap")])
        .unwrap_or(0.0);
    out.push_str(&format!(
        "  verdicts        {:.0} ({bins:.0} via bins, {gaps:.0} via gaps)\n",
        bins + gaps
    ));
}

fn status_stages(snap: &Snapshot, out: &mut String) {
    let sums = snap.matching("po_stage_seconds_sum");
    if sums.is_empty() {
        return;
    }
    out.push_str("stages\n");
    for s in sums {
        let Some(stage) = label(s, "stage") else {
            continue;
        };
        let count = snap
            .value("po_stage_seconds_count", &[("stage", stage)])
            .unwrap_or(0.0);
        out.push_str(&format!(
            "  {stage:<15} {:.3} s over {count:.0} run(s)\n",
            s.value
        ));
    }
}

fn status_serve(snap: &Snapshot, out: &mut String) {
    let Some(observations) = snap.value("po_serve_observations_total", &[]) else {
        return;
    };
    out.push_str("serve daemon\n");
    let batches = snap.value("po_serve_batches_total", &[]).unwrap_or(0.0);
    let shed = snap
        .value("po_serve_queue_dropped_total", &[])
        .unwrap_or(0.0);
    out.push_str(&format!(
        "  ingest          {observations:.0} observations in {batches:.0} batches ({shed:.0} shed)\n"
    ));
    let faults: Vec<String> = snap
        .matching("po_serve_source_faults_total")
        .into_iter()
        .filter(|s| s.value > 0.0)
        .filter_map(|s| Some(format!("{} {:.0}", label(s, "kind")?, s.value)))
        .collect();
    out.push_str(&format!(
        "  source faults   {}\n",
        if faults.is_empty() {
            "none".to_string()
        } else {
            faults.join(", ")
        }
    ));
    let checkpoints: Vec<String> = snap
        .matching("po_serve_checkpoints_total")
        .into_iter()
        .filter(|s| s.value > 0.0)
        .filter_map(|s| Some(format!("{} {:.0}", label(s, "reason")?, s.value)))
        .collect();
    let errors = snap
        .value("po_serve_checkpoint_errors_total", &[])
        .unwrap_or(0.0);
    out.push_str(&format!(
        "  checkpoints     {}{}\n",
        if checkpoints.is_empty() {
            "none".to_string()
        } else {
            checkpoints.join(", ")
        },
        if errors > 0.0 {
            format!(" ({errors:.0} errors)")
        } else {
            String::new()
        }
    ));
    if let Some(events) = snap.value("po_serve_events_total", &[]) {
        out.push_str(&format!("  events          {events:.0}\n"));
    }
}

/// Multi-vantage federation: one health row per vantage. Single-vantage
/// runs export no `po_federation_*` families at all, so their absence
/// gets an explicit hint instead of a silently missing section — but
/// only when the snapshot holds other `po_*` sections (an unrelated
/// snapshot still errors out upstream).
fn status_federation(snap: &Snapshot, out: &mut String) {
    let Some(vantages) = snap.value("po_federation_vantages", &[]) else {
        if !out.is_empty() {
            out.push_str("federation\n");
            out.push_str(
                "  vantages        single (no po_federation_* families; run federate or \
                 serve --vantages N for a multi-vantage view)\n",
            );
        }
        return;
    };
    let fused_events = snap
        .value("po_federation_fused_events_total", &[])
        .unwrap_or(0.0);
    let fused_units = snap.value("po_federation_fused_units", &[]).unwrap_or(0.0);
    out.push_str("federation\n");
    out.push_str(&format!(
        "  vantages        {vantages:.0} ({fused_events:.0} fused events, \
         {fused_units:.0} multi-vantage units)\n"
    ));
    let mut ids: Vec<u64> = snap
        .matching("po_federation_covered_blocks")
        .into_iter()
        .filter_map(|s| label(s, "vantage")?.parse().ok())
        .collect();
    ids.sort_unstable();
    ids.dedup();
    if ids.is_empty() {
        return;
    }
    out.push_str("  vantage  health    blocks  events  quarantine     watermark lag\n");
    for id in ids {
        let v = id.to_string();
        let labels: &[(&str, &str)] = &[("vantage", v.as_str())];
        let health = match snap.value("po_federation_vantage_health", labels) {
            Some(h) if h as i64 == 0 => "healthy",
            Some(h) if h as i64 == 1 => "degraded",
            Some(h) if h as i64 == 2 => "dark",
            Some(_) => "unknown",
            None => "n/a",
        };
        let blocks = snap
            .value("po_federation_covered_blocks", labels)
            .unwrap_or(0.0);
        let events = snap
            .value("po_federation_events_total", labels)
            .unwrap_or(0.0);
        let spans = snap
            .value("po_federation_quarantine_intervals_total", labels)
            .unwrap_or(0.0);
        let secs = snap
            .value("po_federation_quarantine_seconds_total", labels)
            .unwrap_or(0.0);
        let lag = snap
            .value("po_federation_watermark_lag_seconds", labels)
            .unwrap_or(0.0);
        out.push_str(&format!(
            "  {id:>7}  {health:<8}  {blocks:>6.0}  {events:>6.0}  \
             {spans:>3.0} span / {secs:>5.0} s  {lag:>6.0} s\n"
        ));
    }
}

fn status_alerts(snap: &Snapshot, out: &mut String) {
    let sent = snap.value("po_alert_sent_total", &[]);
    let dropped = snap.value("po_alert_dropped_total", &[]);
    if sent.is_none() && dropped.is_none() {
        return;
    }
    let retries = snap.value("po_alert_retries_total", &[]).unwrap_or(0.0);
    let failed = snap.value("po_alert_failed_total", &[]).unwrap_or(0.0);
    out.push_str("alerting\n");
    out.push_str(&format!(
        "  webhook         {:.0} sent, {:.0} dropped (rate limit), {retries:.0} retries, {failed:.0} failed\n",
        sent.unwrap_or(0.0),
        dropped.unwrap_or(0.0)
    ));
}

fn status_bench(snap: &Snapshot, out: &mut String) {
    let Some(excess) = snap.value("po_bench_oversubscribed", &[]) else {
        return;
    };
    if excess <= 0.0 {
        return;
    }
    out.push_str("bench\n");
    out.push_str(&format!(
        "  oversubscribed  peak worker count exceeded detected CPUs by {excess:.0}; \
         treat throughput numbers with suspicion\n"
    ));
}

/// Decision provenance. Tier-off runs export no `po_evidence_*`
/// families at all, so their absence gets an explicit hint instead of a
/// silently missing section — but only when the snapshot holds other
/// `po_*` sections (an unrelated snapshot still errors out upstream).
fn status_evidence(snap: &Snapshot, out: &mut String) {
    let enrolled = snap.value("po_evidence_units_enrolled", &[]);
    let Some(enrolled) = enrolled else {
        if !out.is_empty() {
            out.push_str("evidence\n");
            out.push_str(
                "  tier            off (no po_evidence_* families; rerun with \
                 --evidence full or --evidence sampled:N to capture decision provenance)\n",
            );
        }
        return;
    };
    let events = snap.value("po_evidence_events_total", &[]).unwrap_or(0.0);
    let samples = snap.value("po_evidence_samples_total", &[]).unwrap_or(0.0);
    out.push_str("evidence\n");
    out.push_str(&format!("  units enrolled  {enrolled:.0}\n"));
    out.push_str(&format!(
        "  records         {events:.0} event(s), {samples:.0} trajectory samples\n"
    ));
    if let Some(explains) = snap.value("po_evidence_explains_total", &[]) {
        out.push_str(&format!("  explains served {explains:.0}\n"));
    }
}

fn status_router(snap: &Snapshot, out: &mut String) {
    let batches = snap.value("po_router_batches_total", &[]);
    let busy = snap.matching("po_worker_busy_seconds_total");
    if batches.is_none() && busy.is_empty() {
        return;
    }
    out.push_str("parallel driver\n");
    if let Some(b) = batches {
        let routed = snap
            .value("po_router_observations_total", &[])
            .unwrap_or(0.0);
        let skips = snap.value("po_router_skipto_total", &[]).unwrap_or(0.0);
        out.push_str(&format!(
            "  router          {b:.0} batches, {routed:.0} observations, {skips:.0} skip-to broadcasts\n"
        ));
    }
    let mut workers: Vec<(String, f64, f64)> = busy
        .into_iter()
        .filter_map(|s| {
            let w = label(s, "worker")?.to_string();
            let idle = snap
                .value("po_worker_idle_seconds_total", &[("worker", &w)])
                .unwrap_or(0.0);
            Some((w, s.value, idle))
        })
        .collect();
    workers.sort_by_key(|(w, _, _)| w.parse::<u64>().unwrap_or(u64::MAX));
    for (w, busy_s, idle_s) in workers {
        out.push_str(&format!(
            "  worker {w:<8} busy {busy_s:.3} s, idle {idle_s:.3} s\n"
        ));
    }
}
