//! `detect`: run the passive detector over an observation document, in
//! any of the three execution modes (batch/parallel is the default;
//! `--streaming` replays through the [`StreamingMonitor`] adapter).
//! All modes run the same [`outage_core::DetectionEngine`] kernel, so
//! verdicts are identical; only the driving differs.

use super::{detection_window, resolve_workers, CommandError};
use crate::format;
use outage_core::{
    detect_parallel, detect_parallel_with_sentinel, DetectorConfig, EventEvidence, EvidenceConfig,
    LearnedModel, PassiveDetector, SentinelConfig, StreamingMonitor,
};
use outage_eval::summarize;
use outage_netsim::FaultPlan;
use outage_obs::{Obs, StoreMetrics};
use outage_store::{decode_checkpoint, encode_checkpoint, Checkpoint, StoreError};
use outage_types::{Interval, Observation};

/// Output of `detect`.
#[derive(Debug)]
pub struct DetectOutput {
    /// Detected event document.
    pub events: String,
    /// Quarantined-interval document (empty set unless a sentinel ran
    /// and tripped).
    pub quarantine: String,
    /// Prometheus-text metrics snapshot of the run.
    pub metrics: String,
    /// Span trace as JSON lines (only when tracing was requested).
    pub trace: Option<String>,
    /// Encoded model checkpoint of the learned histories (only when
    /// [`DetectOptions::model_out`] was set).
    pub model: Option<Vec<u8>>,
    /// Evidence document — one JSON record per line, `(start, prefix)`
    /// order — when the evidence tier was on. What `explain` reads.
    pub evidence: Option<String>,
    /// Human summary.
    pub summary: String,
}

/// Knobs for [`detect_with`] beyond the observation document itself.
#[derive(Debug, Clone, Default)]
pub struct DetectOptions {
    /// Explicit window end (seconds); defaults to the last observation
    /// rounded up to a whole day.
    pub window_secs: Option<u64>,
    /// Sensor faults to inject into the feed before detection.
    pub fault_plan: Option<FaultPlan>,
    /// Guard detection with a feed sentinel under this configuration.
    pub sentinel: Option<SentinelConfig>,
    /// Worker threads for the sharded history pass and the parallel
    /// detection driver; `None` means available parallelism. Mutually
    /// exclusive with `streaming`.
    pub workers: Option<usize>,
    /// Run the window through the streaming adapter instead of the
    /// parallel driver: same engine, same verdicts, exercised through
    /// the online code path.
    pub streaming: bool,
    /// Record structured spans (for `--trace-out`). Metrics are always
    /// collected; only span tracing is opt-in.
    pub trace: bool,
    /// An encoded model checkpoint (`learn --model-out`): warm-start by
    /// skipping the history pass entirely. The checkpoint's config
    /// fingerprint and history window must match this run's.
    pub model: Option<Vec<u8>>,
    /// Encode the learned model into [`DetectOutput::model`] so the
    /// caller can persist it (`detect --model-out`). Meaningless — and
    /// rejected — together with `model`: a warm-started run has nothing
    /// newly learned to save.
    pub model_out: bool,
    /// Evidence capture tier: `off` (default) keeps nothing,
    /// `sampled:N` enrolls ~1/N of units by stable prefix hash, `full`
    /// enrolls everything.
    pub evidence: EvidenceConfig,
    /// Cooperative cancellation for the streaming path: when this flag
    /// flips mid-replay (SIGINT/SIGTERM in the binary), the run stops
    /// feeding, drains the monitor at the last replayed instant, and
    /// returns the partial event document instead of dying with no
    /// output. Ignored by the batch path, which has no incremental
    /// state worth salvaging.
    pub cancel: Option<&'static std::sync::atomic::AtomicBool>,
}

/// `detect`: run the passive detector over an observation document.
pub fn detect(
    observations_doc: &str,
    window_secs: Option<u64>,
) -> Result<DetectOutput, CommandError> {
    detect_with(
        observations_doc,
        &DetectOptions {
            window_secs,
            ..DetectOptions::default()
        },
    )
}

/// Decode a warm-start checkpoint and validate it against this run's
/// configuration and window, recording store traffic as it goes.
fn load_checkpoint(
    bytes: &[u8],
    detector: &PassiveDetector,
    window: Interval,
    obs: &Obs,
) -> Result<LearnedModel, CommandError> {
    let metrics = StoreMetrics::register(&obs.registry);
    let checkpoint = match decode_checkpoint(bytes) {
        Ok(c) => c,
        Err(e) => {
            if matches!(
                e,
                StoreError::ChecksumMismatch { .. } | StoreError::Inconsistent { .. }
            ) {
                metrics.checksum_failures.inc();
            }
            return Err(e.into());
        }
    };
    metrics.bytes_read.add(bytes.len() as u64);
    let expected = detector.config().fingerprint();
    if checkpoint.fingerprint != expected {
        return Err(StoreError::FingerprintMismatch {
            expected,
            found: checkpoint.fingerprint,
        }
        .into());
    }
    if checkpoint.model.window() != window {
        return Err(CommandError(format!(
            "checkpoint history window {} does not match the detection window {} \
             (pass --window {} to align them)",
            checkpoint.model.window(),
            window,
            checkpoint.model.window().end.secs()
        )));
    }
    metrics.warm_start_hits.inc();
    Ok(checkpoint.model)
}

/// `detect` with fault injection, a feed sentinel, warm start, and/or
/// an alternate execution mode.
pub fn detect_with(
    observations_doc: &str,
    opts: &DetectOptions,
) -> Result<DetectOutput, CommandError> {
    let mut observations = format::parse_observations(observations_doc)?;
    if observations.is_empty() {
        return Err(CommandError("no observations in input".into()));
    }
    let mut fault_note = String::new();
    if let Some(plan) = &opts.fault_plan {
        let before = observations.len();
        observations = plan.apply_to_vec(&observations);
        // The batch detector wants time order; delivery-order effects
        // (reordering) only matter to the streaming path.
        observations.sort_unstable();
        if observations.is_empty() {
            return Err(CommandError("fault plan silenced every observation".into()));
        }
        fault_note = format!(
            " [faults: {} -> {} observations, {} s marked faulted]",
            before,
            observations.len(),
            plan.faulted().total()
        );
    }
    if opts.model.is_some() && opts.model_out {
        return Err(CommandError(
            "--model and --model-out are mutually exclusive: a warm-started run \
             skips learning, so there is no newly learned model to save"
                .into(),
        ));
    }
    if opts.streaming && opts.workers.is_some() {
        return Err(CommandError(
            "--streaming and --workers are mutually exclusive: the streaming \
             adapter is single-threaded by design"
                .into(),
        ));
    }
    let window = detection_window(&observations, opts.window_secs)?;
    let workers = resolve_workers(opts.workers)?;

    let obs = if opts.trace {
        Obs::with_tracing()
    } else {
        Obs::new()
    };
    let config = DetectorConfig {
        evidence: opts.evidence,
        ..DetectorConfig::default()
    };
    let detector = PassiveDetector::try_new(config)?.with_obs(obs.clone());

    if opts.streaming {
        return detect_streaming(&observations, window, opts, &obs, &detector, &fault_note);
    }

    // Both passes go through the parallel path by default: sharded
    // history learning, then the router/worker detection driver (both
    // produce results identical to the sequential pipeline). A supplied
    // checkpoint replaces the learning pass entirely (warm start).
    let mut warm_note = String::new();
    let mut model_bytes = None;
    let histories = match &opts.model {
        Some(bytes) => {
            let model = load_checkpoint(bytes, &detector, window, &obs)?;
            warm_note = " [warm start from checkpoint]".to_string();
            model.into_indexed()
        }
        None if opts.model_out => {
            let model = detector.learn_model(&observations, window, workers);
            let encoded = encode_checkpoint(&Checkpoint {
                fingerprint: detector.config().fingerprint(),
                model: model.clone(),
            });
            StoreMetrics::register(&obs.registry)
                .bytes_written
                .add(encoded.len() as u64);
            model_bytes = Some(encoded);
            model.into_indexed()
        }
        None => detector.learn_histories_parallel(&observations, window, workers),
    };
    let report = match &opts.sentinel {
        None => detect_parallel(
            &detector,
            &histories,
            observations.iter().copied(),
            window,
            workers,
        ),
        Some(cfg) => detect_parallel_with_sentinel(
            &detector,
            &histories,
            observations.iter().copied(),
            window,
            workers,
            cfg,
        )?,
    };
    // Deterministic by construction: DetectionReport::events sorts at
    // assembly time.
    let events = report.events();
    let evidence_doc = render_evidence(report.evidence().into_iter(), opts.evidence);
    let evidence_note = evidence_note(&evidence_doc, report.evidence_enrolled(), opts.evidence);

    let quarantine_note = if opts.sentinel.is_some() {
        format!(
            ", {} quarantined spans totalling {} s",
            report.quarantined_spans(),
            report.quarantined_secs()
        )
    } else {
        String::new()
    };
    let d = report.diagnostics();
    let summary = format!(
        "window {}: {} observations{}{}, {} blocks covered ({} uncovered), {} outage events \
         ({} via bins, {} via exact-timestamp gaps){}{}, {} workers\n{}",
        window,
        observations.len(),
        fault_note,
        warm_note,
        report.covered_blocks(),
        report.uncovered.len(),
        events.len(),
        d.bin_detections,
        d.gap_detections,
        quarantine_note,
        evidence_note,
        workers,
        summarize(&events, 5),
    );
    Ok(DetectOutput {
        events: format::render_events(&events),
        quarantine: format::render_intervals(&report.quarantined),
        metrics: obs.registry.render_prometheus(),
        trace: obs.tracer.as_ref().map(|t| t.to_jsonl()),
        model: model_bytes,
        evidence: evidence_doc,
        summary,
    })
}

/// Render evidence records as a JSONL document, one record per line.
/// `None` when the tier is off (distinguishing "tier off" from "tier on,
/// zero events": the latter yields an empty document).
fn render_evidence<'a, I>(records: I, tier: EvidenceConfig) -> Option<String>
where
    I: Iterator<Item = &'a EventEvidence>,
{
    if tier.is_off() {
        return None;
    }
    Some(records.map(|e| format!("{}\n", e.to_json())).collect())
}

/// The summary's evidence clause: silent when the tier is off.
fn evidence_note(doc: &Option<String>, enrolled: usize, tier: EvidenceConfig) -> String {
    match doc {
        None => String::new(),
        Some(d) => format!(
            ", evidence {tier}: {} units enrolled, {} records",
            enrolled,
            d.lines().count()
        ),
    }
}

/// The streaming execution mode: warm-start a [`StreamingMonitor`]
/// whose single epoch is the whole detection window (so it is live from
/// the first observation, with units planned from the same model the
/// batch path would use) and replay the slice through it.
fn detect_streaming(
    observations: &[Observation],
    window: Interval,
    opts: &DetectOptions,
    obs: &Obs,
    detector: &PassiveDetector,
    fault_note: &str,
) -> Result<DetectOutput, CommandError> {
    let mut warm_note = String::new();
    let mut model_bytes = None;
    let model = match &opts.model {
        Some(bytes) => {
            let model = load_checkpoint(bytes, detector, window, obs)?;
            warm_note = " [warm start from checkpoint]".to_string();
            model
        }
        None => {
            let workers = resolve_workers(None)?;
            let model = detector.learn_model(observations, window, workers);
            if opts.model_out {
                let encoded = encode_checkpoint(&Checkpoint {
                    fingerprint: detector.config().fingerprint(),
                    model: model.clone(),
                });
                StoreMetrics::register(&obs.registry)
                    .bytes_written
                    .add(encoded.len() as u64);
                model_bytes = Some(encoded);
            }
            model
        }
    };
    let mut monitor = StreamingMonitor::from_model(
        detector.config().clone(),
        &model,
        window.start,
        window.duration(),
    )?;
    if let Some(cfg) = &opts.sentinel {
        monitor = monitor.with_sentinel(*cfg)?;
    }
    let mut monitor = monitor.with_obs(obs.clone());
    // Replay in slices so a cancellation flag (SIGINT in the binary)
    // is noticed promptly; an interrupted run drains at the last
    // replayed instant and still emits its partial document.
    let mut replayed = 0usize;
    let mut interrupted = false;
    for chunk in observations.chunks(4_096) {
        if let Some(flag) = opts.cancel {
            if flag.load(std::sync::atomic::Ordering::Relaxed) {
                interrupted = true;
                break;
            }
        }
        monitor.observe_all(chunk.iter().copied());
        replayed += chunk.len();
    }
    let covered = monitor.covered_blocks();
    let enrolled = monitor.evidence_enrolled();
    let drain_end = if interrupted {
        replayed
            .checked_sub(1)
            .and_then(|i| observations.get(i))
            .map(|o| o.time)
            .unwrap_or(window.start)
    } else {
        window.end
    };
    let (events, quarantined, evidence) = monitor.finish_with_evidence(drain_end);
    let evidence_doc = render_evidence(evidence.iter(), opts.evidence);
    let ev_note = evidence_note(&evidence_doc, enrolled, opts.evidence);

    let quarantine_note = if opts.sentinel.is_some() {
        format!(
            ", {} quarantined spans totalling {} s",
            quarantined.intervals().len(),
            quarantined.total()
        )
    } else {
        String::new()
    };
    let interrupt_note = if interrupted {
        format!(
            " [interrupted: drained after {replayed} of {} observations, results partial to t={}]",
            observations.len(),
            drain_end.secs()
        )
    } else {
        String::new()
    };
    let summary = format!(
        "window {}: {} observations{}{}{}, {} blocks covered, {} outage events{}{}, streaming\n{}",
        window,
        replayed,
        fault_note,
        warm_note,
        interrupt_note,
        covered,
        events.len(),
        quarantine_note,
        ev_note,
        summarize(&events, 5),
    );
    Ok(DetectOutput {
        events: format::render_events(&events),
        quarantine: format::render_intervals(&quarantined),
        metrics: obs.registry.render_prometheus(),
        trace: obs.tracer.as_ref().map(|t| t.to_jsonl()),
        model: model_bytes,
        evidence: evidence_doc,
        summary,
    })
}
