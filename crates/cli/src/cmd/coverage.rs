//! `coverage`: the Figure-1 measurability curve.

use super::CommandError;
use crate::format;
use outage_core::{coverage_by_width, DetectorConfig, PassiveDetector};
use outage_types::{durations, Interval, UnixTime};

/// `coverage`: the Figure-1 curve for an observation document.
pub fn coverage(observations_doc: &str) -> Result<String, CommandError> {
    let observations = format::parse_observations(observations_doc)?;
    let Some(max_t) = observations.iter().map(|o| o.time.secs()).max() else {
        return Err(CommandError("no observations in input".into()));
    };
    let window = Interval::new(
        UnixTime::EPOCH,
        UnixTime(max_t.div_ceil(durations::DAY) * durations::DAY),
    );
    let detector = PassiveDetector::new(DetectorConfig::default());
    let histories = detector.learn_histories(observations.iter().copied(), window);
    let mut out = String::from("bin-width-secs measurable total fraction\n");
    for p in coverage_by_width(&histories, detector.config(), None) {
        out.push_str(&format!(
            "{:>14} {:>10} {:>5} {:>8.3}\n",
            p.width,
            p.measurable,
            p.total,
            p.fraction()
        ));
    }
    Ok(out)
}
