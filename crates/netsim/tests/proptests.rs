//! Property tests for the simulator: whatever the parameters, generated
//! worlds and streams must be well-formed — the detectors' tests all
//! build on these guarantees.

use outage_netsim::{
    diurnal_factor, BlockArrivals, Internet, OutageConfig, OutageSchedule, TopologyConfig,
};
use outage_types::{AddrFamily, Interval, UnixTime};
use proptest::prelude::*;

fn arb_topology() -> impl Strategy<Value = TopologyConfig> {
    (
        1u32..40,
        1.0f64..8.0,
        0.0f64..1.0,
        -6.0f64..-2.0,
        0.5f64..2.5,
        0.0f64..0.9,
    )
        .prop_map(
            |(num_as, v4_blocks, v6_frac, mu, sigma, dark)| TopologyConfig {
                num_as,
                v4_blocks_per_as: v4_blocks,
                v6_as_fraction: v6_frac,
                rate_mu: mu,
                rate_sigma: sigma,
                dark_fraction: dark,
                ..TopologyConfig::default()
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn any_topology_is_well_formed(cfg in arb_topology(), seed in 0u64..1000) {
        let w = Internet::generate(&cfg, seed);
        prop_assert!(!w.blocks().is_empty());
        let mut seen = std::collections::HashSet::new();
        for b in w.blocks() {
            prop_assert!(b.prefix.is_block());
            prop_assert!(seen.insert(b.prefix), "duplicate {}", b.prefix);
            prop_assert!(b.base_rate >= 0.0 && b.base_rate <= cfg.rate_cap);
            prop_assert!(b.base_rate.is_finite());
            prop_assert!((0.0..=1.0).contains(&b.response_rate));
            prop_assert!(w.as_of(&b.prefix).is_some());
        }
        // every AS's blocks point back at it
        for asp in w.ases() {
            for blk in w.blocks_of_as(asp.id) {
                prop_assert_eq!(blk.as_id, asp.id);
            }
        }
        // family counts add up
        prop_assert_eq!(
            w.count_of(AddrFamily::V4) + w.count_of(AddrFamily::V6),
            w.blocks().len()
        );
    }

    #[test]
    fn any_schedule_stays_in_window(cfg in arb_topology(), seed in 0u64..1000, days in 1u64..3) {
        let w = Internet::generate(&cfg, seed);
        let window = Interval::from_secs(0, days * 86_400);
        let s = OutageSchedule::generate(&w, &OutageConfig::default(), window, seed);
        for (prefix, set) in s.blocks_with_outages() {
            prop_assert!(w.block(prefix).is_some(), "outage for unknown block");
            for iv in set.iter() {
                prop_assert!(iv.start >= window.start);
                prop_assert!(iv.end <= window.end);
                prop_assert!(!iv.is_empty());
            }
        }
    }

    #[test]
    fn arrivals_sorted_in_window_and_silenced(
        rate in 0.001f64..0.2,
        amplitude in 0.0f64..0.9,
        phase in 0u64..24,
        outage_start in 10_000u64..60_000,
        outage_len in 1_000u64..20_000,
    ) {
        use outage_netsim::BlockProfile;
        use outage_netsim::AsId;
        use outage_types::IntervalSet;
        let profile = BlockProfile {
            prefix: "10.0.0.0/24".parse().unwrap(),
            as_id: AsId(1),
            base_rate: rate,
            diurnal_amplitude: amplitude,
            phase_secs: phase * 3_600,
            response_rate: 0.9,
            weekend_factor: 1.0,
        };
        let window = Interval::from_secs(0, 86_400);
        let down = IntervalSet::singleton(Interval::from_secs(outage_start, outage_start + outage_len));
        let times: Vec<UnixTime> = BlockArrivals::new(&profile, Some(&down), window, 7)
            .map(|o| o.time)
            .collect();
        for w2 in times.windows(2) {
            prop_assert!(w2[0] <= w2[1], "unsorted arrivals");
        }
        for t in &times {
            prop_assert!(window.contains(*t));
            prop_assert!(!down.contains(*t), "arrival during ground-truth outage");
        }
    }

    #[test]
    fn diurnal_factor_is_bounded_and_periodic(amplitude in 0.0f64..1.0, phase in 0u64..86_400, t in 0u64..604_800) {
        let f = diurnal_factor(UnixTime(t), amplitude, phase);
        prop_assert!(f >= 0.0);
        prop_assert!(f <= 1.0 + amplitude + 1e-12);
        let g = diurnal_factor(UnixTime(t + 86_400), amplitude, phase);
        prop_assert!((f - g).abs() < 1e-12, "not periodic: {f} vs {g}");
    }

    #[test]
    fn expected_arrival_count_tracks_rate(rate in 0.01f64..0.2, seed in 0u64..50) {
        use outage_netsim::BlockProfile;
        use outage_netsim::AsId;
        let profile = BlockProfile {
            prefix: "10.0.0.0/24".parse().unwrap(),
            as_id: AsId(1),
            base_rate: rate,
            diurnal_amplitude: 0.3,
            phase_secs: 0,
            response_rate: 0.9,
            weekend_factor: 1.0,
        };
        let window = Interval::from_secs(0, 86_400);
        let n = BlockArrivals::new(&profile, None, window, seed).count() as f64;
        let expected = rate * 86_400.0;
        // 5 sigma of Poisson noise
        let slack = 5.0 * expected.sqrt() + 5.0;
        prop_assert!(
            (n - expected).abs() < slack,
            "{n} arrivals vs expected {expected} ± {slack}"
        );
    }
}
