//! Synthetic Internet topology: ASes and their address blocks.
//!
//! The simulator's world is a set of autonomous systems, each owning a set
//! of IPv4 /24s and (for some) IPv6 /48s. Every block gets a *traffic
//! profile*: a base query rate toward the passive service (log-normally
//! distributed, so the population spans the paper's dense-to-sparse
//! spectrum), a diurnal modulation with a region-dependent phase, and an
//! address-responsiveness figure `A(E(b))` used by active probers.

use crate::stats::{sample_lognormal, seed_for, splitmix64};
use outage_types::{AddrFamily, Prefix};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Autonomous-system identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AsId(pub u32);

impl std::fmt::Display for AsId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

/// Per-block traffic and responsiveness profile.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BlockProfile {
    /// The block (/24 or /48).
    pub prefix: Prefix,
    /// Owning AS.
    pub as_id: AsId,
    /// Mean query rate toward the passive service, queries/second,
    /// averaged over the diurnal cycle. This is the *resolver-side* rate —
    /// what the root server actually sees after client-side caching.
    pub base_rate: f64,
    /// Relative amplitude of the diurnal cycle, `0.0..=0.95`.
    pub diurnal_amplitude: f64,
    /// Phase offset of the diurnal cycle in seconds (region longitude).
    pub phase_secs: u64,
    /// Probability that a probe to an ever-responsive address in this
    /// block is answered while the block is up — Trinocular's `A(E(b))`.
    pub response_rate: f64,
    /// Rate multiplier applied on simulated weekends (days 5 and 6 of
    /// each week). 1.0 = no weekly seasonality.
    pub weekend_factor: f64,
}

/// Per-AS record.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AsProfile {
    /// Identifier.
    pub id: AsId,
    /// Indices into `Internet::blocks` owned by this AS.
    pub block_indices: Vec<usize>,
    /// Region phase shared by the AS's blocks (seconds of diurnal offset).
    pub phase_secs: u64,
}

/// Parameters for topology generation.
///
/// Defaults produce a small, fast world suitable for unit tests; the
/// scenario presets scale these up.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TopologyConfig {
    /// Number of ASes.
    pub num_as: u32,
    /// Mean IPv4 /24 blocks per AS (geometric-ish spread, at least 1).
    pub v4_blocks_per_as: f64,
    /// Fraction of ASes that also deploy IPv6.
    pub v6_as_fraction: f64,
    /// Mean IPv6 /48 blocks per v6-enabled AS.
    pub v6_blocks_per_as: f64,
    /// Log-normal μ of per-block base rate (ln queries/sec).
    pub rate_mu: f64,
    /// Log-normal σ of per-block base rate.
    pub rate_sigma: f64,
    /// Cap on per-block base rate (queries/sec) so one monster block
    /// cannot dominate run time.
    pub rate_cap: f64,
    /// Range of diurnal amplitudes.
    pub diurnal_min: f64,
    /// Upper bound of diurnal amplitudes.
    pub diurnal_max: f64,
    /// Lower bound of per-block probe responsiveness.
    pub response_min: f64,
    /// Upper bound of per-block probe responsiveness.
    pub response_max: f64,
    /// Fraction of blocks that exist (and answer probes) but never send
    /// traffic to the monitored service. B-root only sees recursive
    /// resolvers — roughly 20 % of Trinocular's probe universe — so
    /// coverage experiments (Fig. 2b) set this high; detection
    /// experiments leave it at 0.
    pub dark_fraction: f64,
    /// Weekend rate multiplier for all blocks (weekly seasonality, the
    /// paper's "seasonal effects" future work). 1.0 disables it.
    pub weekend_factor: f64,
}

impl Default for TopologyConfig {
    fn default() -> Self {
        TopologyConfig {
            num_as: 40,
            v4_blocks_per_as: 6.0,
            v6_as_fraction: 0.3,
            v6_blocks_per_as: 3.0,
            // median ≈ e^-4.6 ≈ 0.010 q/s; σ=1.8 gives a heavy dense tail
            // and a long sparse tail, matching the paper's observation
            // that block density varies over orders of magnitude.
            rate_mu: -4.6,
            rate_sigma: 1.8,
            rate_cap: 2.0,
            diurnal_min: 0.1,
            diurnal_max: 0.8,
            // Active probers target ever-responsive addresses (E(b)), so
            // even the flakiest probed block answers a sizeable fraction
            // of probes.
            response_min: 0.4,
            response_max: 1.0,
            dark_fraction: 0.0,
            weekend_factor: 1.0,
        }
    }
}

/// The generated world: all blocks with profiles, grouped by AS.
#[derive(Debug, Clone)]
pub struct Internet {
    blocks: Vec<BlockProfile>,
    ases: Vec<AsProfile>,
    by_prefix: HashMap<Prefix, usize>,
}

impl Internet {
    /// Generate a world from `config` under a fixed seed. The same
    /// `(config, seed)` always yields the identical world.
    pub fn generate(config: &TopologyConfig, seed: u64) -> Internet {
        let mut blocks = Vec::new();
        let mut ases = Vec::with_capacity(config.num_as as usize);
        for i in 0..config.num_as {
            let as_seed = seed_for(seed, format!("as-{i}").as_bytes());
            let mut rng = SmallRng::seed_from_u64(as_seed);
            // Region phase: one of 24 "time zones".
            let phase_secs = rng.gen_range(0u64..24) * 3_600;
            let id = AsId(i + 1);
            let mut block_indices = Vec::new();

            // IPv4 blocks: 1 + geometric-ish count around the mean.
            let n_v4 = sample_block_count(&mut rng, config.v4_blocks_per_as);
            for j in 0..n_v4.min(256) {
                let addr = ((i + 1) << 16) | ((j as u32) << 8);
                let prefix = Prefix::v4_raw(addr, 24);
                block_indices.push(blocks.len());
                blocks.push(make_profile(prefix, id, phase_secs, config, seed));
            }

            // IPv6 blocks for a fraction of ASes.
            if rng.gen::<f64>() < config.v6_as_fraction {
                let n_v6 = sample_block_count(&mut rng, config.v6_blocks_per_as);
                for j in 0..n_v6.min(256) {
                    let addr = (0x2001u128 << 112) | ((i as u128 + 1) << 88) | ((j as u128) << 80);
                    let prefix = Prefix::v6_raw(addr, 48);
                    block_indices.push(blocks.len());
                    blocks.push(make_profile(prefix, id, phase_secs, config, seed));
                }
            }

            ases.push(AsProfile {
                id,
                block_indices,
                phase_secs,
            });
        }
        let by_prefix = blocks
            .iter()
            .enumerate()
            .map(|(i, b)| (b.prefix, i))
            .collect();
        Internet {
            blocks,
            ases,
            by_prefix,
        }
    }

    /// All blocks.
    pub fn blocks(&self) -> &[BlockProfile] {
        &self.blocks
    }

    /// All ASes.
    pub fn ases(&self) -> &[AsProfile] {
        &self.ases
    }

    /// Look up a block by prefix.
    pub fn block(&self, prefix: &Prefix) -> Option<&BlockProfile> {
        self.by_prefix.get(prefix).map(|&i| &self.blocks[i])
    }

    /// The AS owning a block.
    pub fn as_of(&self, prefix: &Prefix) -> Option<AsId> {
        self.block(prefix).map(|b| b.as_id)
    }

    /// Blocks of one family.
    pub fn blocks_of(&self, family: AddrFamily) -> impl Iterator<Item = &BlockProfile> {
        self.blocks
            .iter()
            .filter(move |b| b.prefix.family() == family)
    }

    /// Count of blocks of one family.
    pub fn count_of(&self, family: AddrFamily) -> usize {
        self.blocks_of(family).count()
    }

    /// Blocks owned by an AS.
    pub fn blocks_of_as(&self, id: AsId) -> impl Iterator<Item = &BlockProfile> {
        let empty: &[usize] = &[];
        let indices = self
            .ases
            .get((id.0 as usize).wrapping_sub(1))
            .map(|a| a.block_indices.as_slice())
            .unwrap_or(empty);
        indices.iter().map(move |&i| &self.blocks[i])
    }
}

fn sample_block_count(rng: &mut SmallRng, mean: f64) -> usize {
    // 1 + geometric with the requested mean: simple, long-tailed like
    // real AS address holdings.
    if mean <= 1.0 {
        return 1;
    }
    let p = 1.0 / mean;
    let mut n = 1usize;
    while rng.gen::<f64>() > p && n < 4096 {
        n += 1;
    }
    n
}

fn make_profile(
    prefix: Prefix,
    as_id: AsId,
    phase_secs: u64,
    config: &TopologyConfig,
    seed: u64,
) -> BlockProfile {
    // Per-block RNG derived from the block identity, so profiles are
    // independent of generation order.
    let tag = format!("{prefix}");
    let mut rng = SmallRng::seed_from_u64(splitmix64(seed_for(seed, tag.as_bytes())));
    let dark = rng.gen::<f64>() < config.dark_fraction;
    let base_rate = if dark {
        0.0
    } else {
        sample_lognormal(&mut rng, config.rate_mu, config.rate_sigma).min(config.rate_cap)
    };
    BlockProfile {
        prefix,
        as_id,
        base_rate,
        diurnal_amplitude: rng.gen_range(config.diurnal_min..=config.diurnal_max),
        phase_secs,
        response_rate: rng.gen_range(config.response_min..=config.response_max),
        weekend_factor: config.weekend_factor,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> Internet {
        Internet::generate(&TopologyConfig::default(), 42)
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Internet::generate(&TopologyConfig::default(), 1);
        let b = Internet::generate(&TopologyConfig::default(), 1);
        assert_eq!(a.blocks().len(), b.blocks().len());
        for (x, y) in a.blocks().iter().zip(b.blocks()) {
            assert_eq!(x.prefix, y.prefix);
            assert_eq!(x.base_rate, y.base_rate);
            assert_eq!(x.phase_secs, y.phase_secs);
        }
        let c = Internet::generate(&TopologyConfig::default(), 2);
        // a different seed must actually change profiles
        assert!(a
            .blocks()
            .iter()
            .zip(c.blocks())
            .any(|(x, y)| x.base_rate != y.base_rate));
    }

    #[test]
    fn prefixes_are_unique_and_canonical() {
        let w = world();
        let mut seen = std::collections::HashSet::new();
        for b in w.blocks() {
            assert!(b.prefix.is_block(), "{} not a canonical block", b.prefix);
            assert!(seen.insert(b.prefix), "duplicate {}", b.prefix);
        }
    }

    #[test]
    fn both_families_present() {
        let w = world();
        assert!(w.count_of(AddrFamily::V4) > 0);
        assert!(w.count_of(AddrFamily::V6) > 0);
        assert!(w.count_of(AddrFamily::V4) > w.count_of(AddrFamily::V6));
        assert_eq!(
            w.count_of(AddrFamily::V4) + w.count_of(AddrFamily::V6),
            w.blocks().len()
        );
    }

    #[test]
    fn lookup_by_prefix() {
        let w = world();
        let first = &w.blocks()[0];
        let found = w.block(&first.prefix).unwrap();
        assert_eq!(found.base_rate, first.base_rate);
        assert_eq!(w.as_of(&first.prefix), Some(first.as_id));
        let missing: Prefix = "203.0.113.0/24".parse().unwrap();
        assert!(w.block(&missing).is_none());
    }

    #[test]
    fn as_grouping_consistent() {
        let w = world();
        for asp in w.ases() {
            for &i in &asp.block_indices {
                assert_eq!(w.blocks()[i].as_id, asp.id);
                assert_eq!(w.blocks()[i].phase_secs, asp.phase_secs);
            }
            let via_iter = w.blocks_of_as(asp.id).count();
            assert_eq!(via_iter, asp.block_indices.len());
        }
    }

    #[test]
    fn rates_span_orders_of_magnitude() {
        let cfg = TopologyConfig {
            num_as: 200,
            ..TopologyConfig::default()
        };
        let w = Internet::generate(&cfg, 7);
        let rates: Vec<f64> = w.blocks().iter().map(|b| b.base_rate).collect();
        let min = rates.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = rates.iter().cloned().fold(0.0, f64::max);
        assert!(max / min > 100.0, "span {min}..{max} too narrow");
        assert!(max <= cfg.rate_cap + f64::EPSILON);
        assert!(rates.iter().all(|&r| r > 0.0));
    }

    #[test]
    fn profiles_within_configured_bounds() {
        let cfg = TopologyConfig::default();
        let w = world();
        for b in w.blocks() {
            assert!((cfg.diurnal_min..=cfg.diurnal_max).contains(&b.diurnal_amplitude));
            assert!((cfg.response_min..=cfg.response_max).contains(&b.response_rate));
            assert!(b.phase_secs < 24 * 3_600);
            assert_eq!(b.phase_secs % 3_600, 0);
        }
    }

    #[test]
    fn dark_fraction_silences_blocks_but_keeps_them() {
        let cfg = TopologyConfig {
            num_as: 100,
            dark_fraction: 0.8,
            ..TopologyConfig::default()
        };
        let w = Internet::generate(&cfg, 11);
        let total = w.blocks().len();
        let dark = w.blocks().iter().filter(|b| b.base_rate == 0.0).count();
        let frac = dark as f64 / total as f64;
        assert!(
            (0.7..0.9).contains(&frac),
            "dark fraction {frac} far from configured 0.8"
        );
        // dark blocks still answer probes
        assert!(w
            .blocks()
            .iter()
            .filter(|b| b.base_rate == 0.0)
            .all(|b| b.response_rate > 0.0));
        // determinism holds with darkness
        let w2 = Internet::generate(&cfg, 11);
        for (a, b) in w.blocks().iter().zip(w2.blocks()) {
            assert_eq!(a.base_rate, b.base_rate);
        }
    }

    #[test]
    fn unknown_as_yields_no_blocks() {
        let w = world();
        assert_eq!(w.blocks_of_as(AsId(9999)).count(), 0);
    }
}
