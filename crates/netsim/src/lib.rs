//! # outage-netsim
//!
//! The simulated Internet that stands in for the paper's closed data.
//!
//! The paper measures real passive traffic at B-root and validates against
//! production Trinocular and RIPE Atlas feeds — none of which are
//! available offline. This crate substitutes a *generative* world:
//!
//! * [`topology`]: ASes owning IPv4 /24s and IPv6 /48s, each block with a
//!   log-normal base query rate (the dense↔sparse spectrum), a diurnal
//!   cycle with regional phase, and a probe-responsiveness figure.
//! * [`schedule`]: ground-truth outage injection — independent per-block
//!   short/long outages plus correlated whole-AS events, with IPv6 blocks
//!   failing more often (as the paper observed).
//! * [`arrivals`]: lazy non-homogeneous Poisson arrival streams per block,
//!   silenced during ground-truth outages, k-way merged into the
//!   time-ordered feed a root-server telescope would see.
//! * [`oracle`]: the probe interface active baselines measure through —
//!   they see replies/timeouts, never the truth.
//! * [`packets`]: optional wire-level rendering of the feed as real DNS
//!   datagrams (exercises `outage-dnswire` end-to-end).
//! * [`faults`]: sensor-fault injection — blackouts, brownouts,
//!   reordering, duplication, jitter, and payload corruption applied to
//!   the *feed itself*, with ground truth of the faulted spans.
//! * [`scenario`]: presets matching each experiment in DESIGN.md.
//!
//! Everything is deterministic under a seed: two runs of the same scenario
//! produce byte-identical streams, which the test suite relies on.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod arrivals;
pub mod faults;
pub mod oracle;
pub mod packets;
pub mod replay;
pub mod scenario;
pub mod schedule;
pub mod stats;
pub mod topology;

pub use arrivals::{diurnal_factor, is_weekend, BlockArrivals, MergedArrivals};
pub use faults::{Brownout, FaultPlan, FaultedArrivals, JitterFault, ReorderFault};
pub use oracle::{NetworkOracle, ProbeOutcome};
pub use packets::PacketFeed;
pub use replay::ReplayClock;
pub use scenario::{Scenario, ScenarioConfig, ThinnedArrivals};
pub use schedule::{OutageConfig, OutageSchedule};
pub use topology::{AsId, AsProfile, BlockProfile, Internet, TopologyConfig};
