//! Wire-level realization of the passive feed.
//!
//! The main simulation path hands detectors abstract
//! [`Observation`]s for speed, but the capture
//! pipeline should also be exercised end-to-end: this module renders
//! observations as actual DNS query datagrams (source address drawn from
//! the block, query name drawn from a Zipf-popular catalogue), which the
//! [`Telescope`](outage_dnswire::Telescope) then parses back. Integration
//! tests assert the round trip is lossless.

use crate::stats::{sample_zipf, seed_for};
use outage_dnswire::{CapturedPacket, DnsName, Message, RecordType};
use outage_types::Observation;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Renders observations as captured DNS query packets.
pub struct PacketFeed {
    names: Vec<DnsName>,
    rng: SmallRng,
}

impl PacketFeed {
    /// A feed with the default name catalogue.
    pub fn new(seed: u64) -> PacketFeed {
        let names = [
            "example.com",
            "wikipedia.org",
            "cdn.example.net",
            "mail.example.org",
            "api.example.io",
            "ntp.example.net",
            "static.example-cdn.com",
            "search.example.com",
            "video.example.tv",
            "updates.example-os.org",
        ]
        .iter()
        .map(|s| s.parse().expect("static names are valid"))
        .collect();
        PacketFeed {
            names,
            rng: SmallRng::seed_from_u64(seed_for(seed, b"packet-feed")),
        }
    }

    /// Render one observation as a captured packet.
    ///
    /// The source host is a random address inside the observation's block,
    /// the query name Zipf-distributed over the catalogue, and the type A
    /// or AAAA matching the source family (as real dual-stack resolvers
    /// skew toward).
    pub fn render(&mut self, obs: &Observation) -> CapturedPacket {
        let host = obs.block.host(self.rng.gen::<u64>());
        let qname = self.names[sample_zipf(&mut self.rng, self.names.len(), 1.1)].clone();
        let qtype = match obs.block.family() {
            outage_types::AddrFamily::V4 => RecordType::A,
            outage_types::AddrFamily::V6 => RecordType::Aaaa,
        };
        let msg = Message::query(self.rng.gen(), qname, qtype);
        CapturedPacket {
            time: obs.time,
            src: host,
            payload: msg.encode(),
        }
    }

    /// Render a whole observation stream.
    pub fn render_all<'a, I>(&'a mut self, obs: I) -> impl Iterator<Item = CapturedPacket> + 'a
    where
        I: IntoIterator<Item = Observation> + 'a,
    {
        obs.into_iter().map(move |o| self.render(&o))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use outage_dnswire::Telescope;
    use outage_types::{Prefix, UnixTime};

    #[test]
    fn rendered_packets_parse_back_to_the_same_block() {
        let mut feed = PacketFeed::new(1);
        let mut telescope = Telescope::new();
        let block: Prefix = "198.51.100.0/24".parse().unwrap();
        for t in 0..200 {
            let obs = Observation::new(UnixTime(t), block);
            let pkt = feed.render(&obs);
            let back = telescope.observe(&pkt).expect("well-formed query");
            assert_eq!(back.time, obs.time);
            assert_eq!(back.block, block);
        }
        assert_eq!(telescope.stats().accepted, 200);
        assert_eq!(telescope.stats().dropped, 0);
    }

    #[test]
    fn v6_observations_render_as_aaaa_from_the_48() {
        let mut feed = PacketFeed::new(2);
        let block: Prefix = "2001:db8:7::/48".parse().unwrap();
        let pkt = feed.render(&Observation::new(UnixTime(9), block));
        let msg = Message::decode(&pkt.payload).unwrap();
        assert_eq!(msg.questions[0].qtype, RecordType::Aaaa);
        match pkt.src {
            outage_types::HostAddr::V6(ip) => assert!(block.contains_v6(ip)),
            _ => panic!("wrong family"),
        }
    }

    #[test]
    fn name_popularity_is_skewed() {
        let mut feed = PacketFeed::new(3);
        let block: Prefix = "10.0.0.0/24".parse().unwrap();
        let mut counts = std::collections::HashMap::<String, usize>::new();
        for t in 0..3_000 {
            let pkt = feed.render(&Observation::new(UnixTime(t), block));
            let msg = Message::decode(&pkt.payload).unwrap();
            *counts
                .entry(msg.questions[0].qname.to_string())
                .or_default() += 1;
        }
        let max = counts.values().max().unwrap();
        let min = counts.values().min().unwrap();
        assert!(max > min, "popularity should be skewed: {counts:?}");
    }

    #[test]
    fn render_all_preserves_order_and_count() {
        let mut feed = PacketFeed::new(4);
        let block: Prefix = "10.0.0.0/24".parse().unwrap();
        let obs: Vec<Observation> = (0..50)
            .map(|t| Observation::new(UnixTime(t), block))
            .collect();
        let pkts: Vec<CapturedPacket> = feed.render_all(obs.clone()).collect();
        assert_eq!(pkts.len(), 50);
        for (o, p) in obs.iter().zip(&pkts) {
            assert_eq!(o.time, p.time);
        }
    }
}
