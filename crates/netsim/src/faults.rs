//! Sensor-fault injection: perturb a scenario's *feed*, not its world.
//!
//! Every other module in this crate simulates the Internet; this one
//! simulates the telescope breaking. A [`FaultPlan`] wraps any arrival
//! stream and degrades it the way real capture pipelines do:
//!
//! * **blackouts** — the feed stops entirely for an interval (capture
//!   outage, crashed forwarder);
//! * **brownouts** — the global rate collapses to a fraction of itself
//!   (clogged pipe, packet loss upstream of the tap);
//! * **reordering** — bounded delivery skew, so timestamps arrive out of
//!   order;
//! * **duplication** — the same packet delivered twice;
//! * **timestamp jitter** — clock error of up to ± a few seconds;
//! * **corruption** — truncated or bit-flipped DNS payloads (applied at
//!   the packet layer by [`FaultPlan::corrupt_packets`]).
//!
//! Crucially, the plan also knows its own **ground truth**:
//! [`FaultPlan::faulted`] returns the intervals during which the *sensor*
//! (not the network) was broken, so an evaluation can check that a
//! detector quarantined those spans instead of reporting mass outages.
//!
//! Everything is deterministic under the plan's seed.

use crate::stats::seed_for;
use outage_dnswire::CapturedPacket;
use outage_types::{Interval, IntervalSet, Observation, UnixTime};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// A brownout: during `interval`, each arrival survives with
/// probability `keep`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Brownout {
    /// The affected span.
    pub interval: Interval,
    /// Survival probability in `[0, 1]`.
    pub keep: f64,
}

/// Bounded delivery reordering.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReorderFault {
    /// Maximum delivery delay in seconds.
    pub max_skew_secs: u64,
    /// Fraction of arrivals delayed.
    pub prob: f64,
}

/// Timestamp jitter of up to ± `max_secs`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JitterFault {
    /// Maximum absolute clock error in seconds.
    pub max_secs: u64,
    /// Fraction of arrivals affected.
    pub prob: f64,
}

/// A deterministic recipe of sensor faults to inject into a feed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct FaultPlan {
    /// Total feed stalls.
    pub blackouts: Vec<Interval>,
    /// Global rate collapses.
    pub brownouts: Vec<Brownout>,
    /// Bounded delivery reordering, if any.
    pub reorder: Option<ReorderFault>,
    /// Probability of each arrival being delivered twice.
    pub duplicate_prob: f64,
    /// Timestamp jitter, if any.
    pub jitter: Option<JitterFault>,
    /// Probability of each *packet* payload being corrupted (only
    /// meaningful through [`Self::corrupt_packets`]).
    pub corrupt_prob: f64,
    /// RNG seed; two applications of the same plan to the same stream
    /// are identical.
    pub seed: u64,
}

impl FaultPlan {
    /// An empty plan (no faults) with the given seed.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// Add a total feed stall over `interval`.
    pub fn blackout(mut self, interval: Interval) -> FaultPlan {
        self.blackouts.push(interval);
        self
    }

    /// Add a rate collapse to `keep` of nominal over `interval`.
    pub fn brownout(mut self, interval: Interval, keep: f64) -> FaultPlan {
        self.brownouts.push(Brownout { interval, keep });
        self
    }

    /// Delay `prob` of arrivals by up to `max_skew_secs` (delivery
    /// order, not timestamps).
    pub fn reorder(mut self, max_skew_secs: u64, prob: f64) -> FaultPlan {
        self.reorder = Some(ReorderFault {
            max_skew_secs,
            prob,
        });
        self
    }

    /// Deliver `prob` of arrivals twice.
    pub fn duplicate(mut self, prob: f64) -> FaultPlan {
        self.duplicate_prob = prob;
        self
    }

    /// Perturb `prob` of timestamps by up to ± `max_secs`.
    pub fn jitter(mut self, max_secs: u64, prob: f64) -> FaultPlan {
        self.jitter = Some(JitterFault { max_secs, prob });
        self
    }

    /// Corrupt `prob` of packet payloads (see [`Self::corrupt_packets`]).
    pub fn corrupt(mut self, prob: f64) -> FaultPlan {
        self.corrupt_prob = prob;
        self
    }

    /// Ground truth: the intervals during which the **sensor** was
    /// faulted (blackouts and brownouts). Detections overlapping these
    /// are sensor artifacts; evaluation should exclude them.
    pub fn faulted(&self) -> IntervalSet {
        let mut set = IntervalSet::new();
        for iv in &self.blackouts {
            set.insert(*iv);
        }
        for b in &self.brownouts {
            set.insert(b.interval);
        }
        set
    }

    /// Apply the plan to a time-sorted arrival stream, yielding the
    /// degraded stream the detector would actually receive (possibly out
    /// of delivery order if `reorder` is set).
    pub fn apply<I>(&self, arrivals: I) -> FaultedArrivals<I::IntoIter>
    where
        I: IntoIterator<Item = Observation>,
    {
        FaultedArrivals {
            plan: self.clone(),
            inner: arrivals.into_iter(),
            rng: SmallRng::seed_from_u64(seed_for(self.seed, b"fault-plan")),
            heap: BinaryHeap::new(),
            ready: VecDeque::new(),
            seq: 0,
            drained: false,
        }
    }

    /// Apply the plan to a slice, collecting the degraded stream.
    pub fn apply_to_vec(&self, arrivals: &[Observation]) -> Vec<Observation> {
        self.apply(arrivals.iter().copied()).collect()
    }

    /// Apply payload corruption to a packet stream: each packet is
    /// truncated or bit-flipped with probability `corrupt_prob`. The
    /// telescope must survive (and count) the damage, never panic.
    pub fn corrupt_packets<I>(&self, packets: I) -> impl Iterator<Item = CapturedPacket>
    where
        I: IntoIterator<Item = CapturedPacket>,
    {
        let prob = self.corrupt_prob;
        let mut rng = SmallRng::seed_from_u64(seed_for(self.seed, b"fault-corrupt"));
        packets.into_iter().map(move |mut pkt| {
            if prob > 0.0 && rng.gen_bool(prob) && !pkt.payload.is_empty() {
                let mut bytes = pkt.payload.to_vec();
                if rng.gen_bool(0.5) {
                    // Truncate somewhere inside the datagram.
                    let keep = rng.gen_range(1..=bytes.len());
                    bytes.truncate(keep);
                } else {
                    // Flip a handful of bytes to garbage.
                    for _ in 0..rng.gen_range(1..=4usize) {
                        let i = rng.gen_range(0..bytes.len());
                        bytes[i] ^= rng.gen::<u8>() | 1;
                    }
                }
                pkt.payload = bytes.into();
            }
            pkt
        })
    }

    /// Render the plan in the one-directive-per-line text format
    /// accepted by [`FaultPlan::parse`].
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("seed {}\n", self.seed));
        for iv in &self.blackouts {
            out.push_str(&format!("blackout {} {}\n", iv.start.secs(), iv.end.secs()));
        }
        for b in &self.brownouts {
            out.push_str(&format!(
                "brownout {} {} {}\n",
                b.interval.start.secs(),
                b.interval.end.secs(),
                b.keep
            ));
        }
        if let Some(r) = &self.reorder {
            out.push_str(&format!("reorder {} {}\n", r.max_skew_secs, r.prob));
        }
        if self.duplicate_prob > 0.0 {
            out.push_str(&format!("duplicate {}\n", self.duplicate_prob));
        }
        if let Some(j) = &self.jitter {
            out.push_str(&format!("jitter {} {}\n", j.max_secs, j.prob));
        }
        if self.corrupt_prob > 0.0 {
            out.push_str(&format!("corrupt {}\n", self.corrupt_prob));
        }
        out
    }

    /// Parse the text format: one directive per line —
    /// `seed N`, `blackout START END`, `brownout START END KEEP`,
    /// `reorder MAX_SKEW PROB`, `duplicate PROB`, `jitter MAX PROB`,
    /// `corrupt PROB`. Blank lines and `#` comments are ignored.
    pub fn parse(text: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            let directive = parts.next().unwrap();
            let args: Vec<&str> = parts.collect();
            let ctx = |what: &str| format!("line {}: {what}: {raw:?}", lineno + 1);
            let num =
                |s: &str| -> Result<u64, String> { s.parse().map_err(|_| ctx("bad integer")) };
            let frac = |s: &str| -> Result<f64, String> {
                let v: f64 = s.parse().map_err(|_| ctx("bad number"))?;
                if !(0.0..=1.0).contains(&v) {
                    return Err(ctx("probability outside [0, 1]"));
                }
                Ok(v)
            };
            match (directive, args.as_slice()) {
                ("seed", [s]) => plan.seed = num(s)?,
                ("blackout", [a, b]) => {
                    let iv = Interval::from_secs(num(a)?, num(b)?);
                    if iv.is_empty() {
                        return Err(ctx("empty blackout interval"));
                    }
                    plan.blackouts.push(iv);
                }
                ("brownout", [a, b, k]) => {
                    let iv = Interval::from_secs(num(a)?, num(b)?);
                    if iv.is_empty() {
                        return Err(ctx("empty brownout interval"));
                    }
                    plan.brownouts.push(Brownout {
                        interval: iv,
                        keep: frac(k)?,
                    });
                }
                ("reorder", [s, p]) => {
                    plan.reorder = Some(ReorderFault {
                        max_skew_secs: num(s)?,
                        prob: frac(p)?,
                    });
                }
                ("duplicate", [p]) => plan.duplicate_prob = frac(p)?,
                ("jitter", [s, p]) => {
                    plan.jitter = Some(JitterFault {
                        max_secs: num(s)?,
                        prob: frac(p)?,
                    });
                }
                ("corrupt", [p]) => plan.corrupt_prob = frac(p)?,
                _ => return Err(ctx("unknown directive or wrong arity")),
            }
        }
        Ok(plan)
    }
}

/// The degraded stream produced by [`FaultPlan::apply`].
///
/// Output timestamps carry the injected jitter; output *order* carries
/// the injected delivery skew. Without reorder/jitter faults the stream
/// stays sorted.
pub struct FaultedArrivals<I> {
    plan: FaultPlan,
    inner: I,
    rng: SmallRng,
    /// Min-heap on (delivery key, sequence): holds arrivals whose
    /// delivery slot hasn't safely passed yet.
    heap: BinaryHeap<Reverse<(u64, u64, Observation)>>,
    ready: VecDeque<Observation>,
    seq: u64,
    drained: bool,
}

impl<I: Iterator<Item = Observation>> FaultedArrivals<I> {
    /// Jittered timestamps can run up to `max_secs` *behind* the input
    /// clock, so delivery keys are only final once the input clock is
    /// that far past them.
    fn slack(&self) -> u64 {
        self.plan.jitter.map_or(0, |j| j.max_secs)
    }

    fn process(&mut self, obs: Observation) {
        let t = obs.time;
        if self.plan.blackouts.iter().any(|iv| iv.contains(t)) {
            return;
        }
        if let Some(b) = self.plan.brownouts.iter().find(|b| b.interval.contains(t)) {
            if !self.rng.gen_bool(b.keep.clamp(0.0, 1.0)) {
                return;
            }
        }
        let mut stamped = t.secs();
        if let Some(j) = self.plan.jitter {
            if j.max_secs > 0 && self.rng.gen_bool(j.prob) {
                let delta = self.rng.gen_range(0..=2 * j.max_secs);
                stamped = (stamped + delta).saturating_sub(j.max_secs);
            }
        }
        let copies =
            if self.plan.duplicate_prob > 0.0 && self.rng.gen_bool(self.plan.duplicate_prob) {
                2
            } else {
                1
            };
        for _ in 0..copies {
            let mut key = stamped;
            if let Some(r) = self.plan.reorder {
                if r.max_skew_secs > 0 && self.rng.gen_bool(r.prob) {
                    key += self.rng.gen_range(0..=r.max_skew_secs);
                }
            }
            self.heap.push(Reverse((
                key,
                self.seq,
                Observation::new(UnixTime(stamped), obs.block),
            )));
            self.seq += 1;
        }
    }

    /// Move every held arrival whose delivery key can no longer be
    /// undercut by future input (input clock at `now`) into `ready`.
    fn release_through(&mut self, now: u64) {
        let horizon = now.saturating_sub(self.slack());
        while let Some(Reverse((key, _, _))) = self.heap.peek() {
            if *key > horizon {
                break;
            }
            let Reverse((_, _, obs)) = self.heap.pop().unwrap();
            self.ready.push_back(obs);
        }
    }
}

impl<I: Iterator<Item = Observation>> Iterator for FaultedArrivals<I> {
    type Item = Observation;

    fn next(&mut self) -> Option<Observation> {
        loop {
            if let Some(obs) = self.ready.pop_front() {
                return Some(obs);
            }
            if self.drained {
                return None;
            }
            match self.inner.next() {
                Some(obs) => {
                    let now = obs.time.secs();
                    self.process(obs);
                    self.release_through(now);
                }
                None => {
                    self.drained = true;
                    while let Some(Reverse((_, _, obs))) = self.heap.pop() {
                        self.ready.push_back(obs);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use outage_types::Prefix;

    fn block() -> Prefix {
        "192.0.2.0/24".parse().unwrap()
    }

    fn steady(period: u64, until: u64) -> Vec<Observation> {
        (0..until)
            .step_by(period as usize)
            .map(|t| Observation::new(UnixTime(t), block()))
            .collect()
    }

    #[test]
    fn empty_plan_is_identity() {
        let obs = steady(10, 10_000);
        assert_eq!(FaultPlan::new(1).apply_to_vec(&obs), obs);
    }

    #[test]
    fn blackout_silences_exactly_its_interval() {
        let plan = FaultPlan::new(1).blackout(Interval::from_secs(3_000, 5_000));
        let out = plan.apply_to_vec(&steady(10, 10_000));
        assert!(out.iter().all(|o| !(3_000..5_000).contains(&o.time.secs())));
        assert_eq!(out.len(), 1_000 - 200);
        assert_eq!(plan.faulted().total(), 2_000);
    }

    #[test]
    fn brownout_thins_to_roughly_keep() {
        let plan = FaultPlan::new(7).brownout(Interval::from_secs(0, 100_000), 0.25);
        let out = plan.apply_to_vec(&steady(1, 100_000));
        let frac = out.len() as f64 / 100_000.0;
        assert!((0.22..0.28).contains(&frac), "kept {frac}");
    }

    #[test]
    fn duplication_adds_copies() {
        let plan = FaultPlan::new(3).duplicate(0.5);
        let out = plan.apply_to_vec(&steady(1, 10_000));
        assert!(out.len() > 14_000 && out.len() < 16_000, "{}", out.len());
    }

    #[test]
    fn reordering_is_bounded_and_lossless() {
        let skew = 30;
        let plan = FaultPlan::new(9).reorder(skew, 0.5);
        let input = steady(2, 20_000);
        let out = plan.apply_to_vec(&input);
        assert_eq!(out.len(), input.len(), "reordering must not lose");
        // Same multiset of timestamps…
        let mut sorted = out.clone();
        sorted.sort();
        assert_eq!(sorted, input);
        // …and displacement bounded by the skew.
        let mut max_seen = 0u64;
        for o in &out {
            let t = o.time.secs();
            assert!(
                t + skew >= max_seen,
                "displacement beyond skew: {t} after {max_seen}"
            );
            max_seen = max_seen.max(t);
        }
        // Some actual disorder occurred.
        assert_ne!(out, input, "plan should actually perturb");
    }

    #[test]
    fn jitter_moves_timestamps_within_bound() {
        let plan = FaultPlan::new(4).jitter(5, 1.0);
        let input = steady(100, 50_000);
        let out = plan.apply_to_vec(&input);
        assert_eq!(out.len(), input.len());
        let mut sorted: Vec<u64> = out.iter().map(|o| o.time.secs()).collect();
        sorted.sort_unstable();
        for (o, i) in sorted.iter().zip(&input) {
            let d = o.abs_diff(i.time.secs());
            assert!(d <= 5, "jitter beyond bound: {d}");
        }
        assert!(out.iter().zip(&input).any(|(a, b)| a.time != b.time));
    }

    #[test]
    fn application_is_deterministic_under_seed() {
        let plan = FaultPlan::new(5)
            .brownout(Interval::from_secs(1_000, 4_000), 0.5)
            .reorder(20, 0.3)
            .jitter(3, 0.2)
            .duplicate(0.05);
        let input = steady(3, 30_000);
        assert_eq!(plan.apply_to_vec(&input), plan.apply_to_vec(&input));
        let other = FaultPlan {
            seed: 6,
            ..plan.clone()
        };
        assert_ne!(plan.apply_to_vec(&input), other.apply_to_vec(&input));
    }

    #[test]
    fn corrupt_packets_damages_some_payloads() {
        use crate::packets::PacketFeed;
        let mut feed = PacketFeed::new(1);
        let obs = steady(10, 5_000);
        let clean: Vec<_> = feed.render_all(obs.iter().copied()).collect();
        let plan = FaultPlan::new(2).corrupt(0.3);
        let dirty: Vec<_> = plan.corrupt_packets(clean.clone()).collect();
        assert_eq!(dirty.len(), clean.len());
        let changed = clean
            .iter()
            .zip(&dirty)
            .filter(|(a, b)| a.payload != b.payload)
            .count();
        assert!(changed > 50, "expected corruption, got {changed}");
    }

    #[test]
    fn text_format_round_trips() {
        let plan = FaultPlan::new(42)
            .blackout(Interval::from_secs(43_200, 45_000))
            .brownout(Interval::from_secs(50_000, 52_000), 0.2)
            .reorder(60, 0.3)
            .duplicate(0.01)
            .jitter(5, 0.5)
            .corrupt(0.01);
        let text = plan.render();
        let back = FaultPlan::parse(&text).expect("own rendering parses");
        assert_eq!(back, plan);
    }

    #[test]
    fn parse_accepts_comments_and_rejects_nonsense() {
        let plan = FaultPlan::parse("# a comment\n\nseed 7\nblackout 100 200 # trailing comment\n")
            .unwrap();
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.blackouts, vec![Interval::from_secs(100, 200)]);

        assert!(FaultPlan::parse("blackout 200 100").is_err(), "empty iv");
        assert!(FaultPlan::parse("brownout 0 10 1.5").is_err(), "bad prob");
        assert!(FaultPlan::parse("frobnicate 1").is_err(), "unknown");
        assert!(FaultPlan::parse("blackout 1").is_err(), "arity");
    }
}
