//! Per-block passive traffic generation.
//!
//! Each block emits queries toward the service as a non-homogeneous
//! Poisson process: the base rate from its profile, modulated by a
//! diurnal cycle, and *silenced* while the block is down in the ground
//! truth — the absence of that silence is exactly the signal the passive
//! detector hunts for. Arrivals are generated lazily by thinning, so a
//! run's memory stays proportional to the number of blocks, not packets.

use crate::stats::{sample_exp, seed_for};
use crate::topology::BlockProfile;
use outage_types::{Interval, IntervalSet, Observation, UnixTime};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Diurnal modulation factor at time `t` for a block with relative
/// amplitude `amplitude` and phase `phase_secs`: a sinusoid with period
/// one day, mean 1.0, never negative.
pub fn diurnal_factor(t: UnixTime, amplitude: f64, phase_secs: u64) -> f64 {
    debug_assert!((0.0..=1.0).contains(&amplitude));
    let day_frac = ((t.secs() + phase_secs) % 86_400) as f64 / 86_400.0;
    (1.0 + amplitude * (std::f64::consts::TAU * day_frac).sin()).max(0.0)
}

/// Whether `t` falls on a simulated weekend (days 5 and 6 of each week,
/// counted from the epoch).
pub fn is_weekend(t: UnixTime) -> bool {
    matches!((t.secs() / 86_400) % 7, 5 | 6)
}

/// Lazy arrival-time iterator for one block over a window.
///
/// Implements Lewis–Shedler thinning of a homogeneous process at the
/// block's peak rate. Times falling inside ground-truth down intervals
/// are suppressed.
pub struct BlockArrivals<'a> {
    profile: &'a BlockProfile,
    down: Option<&'a IntervalSet>,
    window: Interval,
    rate_max: f64,
    /// Continuous simulation clock in seconds (f64 for exact thinning,
    /// emitted truncated to whole seconds).
    clock: f64,
    rng: SmallRng,
}

impl<'a> BlockArrivals<'a> {
    /// Arrivals for `profile` over `window`, silenced during `down`
    /// intervals, deterministic under `seed` (independent of other
    /// blocks).
    pub fn new(
        profile: &'a BlockProfile,
        down: Option<&'a IntervalSet>,
        window: Interval,
        seed: u64,
    ) -> BlockArrivals<'a> {
        let tag = format!("arrivals-{}", profile.prefix);
        BlockArrivals {
            profile,
            down,
            window,
            rate_max: profile.base_rate
                * (1.0 + profile.diurnal_amplitude)
                * profile.weekend_factor.max(1.0),
            clock: window.start.secs() as f64,
            rng: SmallRng::seed_from_u64(seed_for(seed, tag.as_bytes())),
        }
    }

    /// The block's instantaneous rate at `t` (ignoring outages).
    pub fn rate_at(&self, t: UnixTime) -> f64 {
        let weekly = if is_weekend(t) {
            self.profile.weekend_factor
        } else {
            1.0
        };
        self.profile.base_rate
            * weekly
            * diurnal_factor(t, self.profile.diurnal_amplitude, self.profile.phase_secs)
    }
}

impl Iterator for BlockArrivals<'_> {
    type Item = Observation;

    fn next(&mut self) -> Option<Observation> {
        if self.rate_max <= 0.0 {
            return None;
        }
        loop {
            self.clock += sample_exp(&mut self.rng, self.rate_max);
            if self.clock >= self.window.end.secs() as f64 {
                return None;
            }
            let t = UnixTime(self.clock as u64);
            // Thinning: accept with prob rate(t)/rate_max.
            if self.rng.gen::<f64>() * self.rate_max > self.rate_at(t) {
                continue;
            }
            // Outage silencing: a down block sends nothing.
            if self.down.is_some_and(|d| d.contains(t)) {
                continue;
            }
            return Some(Observation::new(t, self.profile.prefix));
        }
    }
}

/// K-way merge of per-block arrival streams into one time-ordered
/// observation stream — the simulator's equivalent of the packet capture
/// at B-root.
pub struct MergedArrivals<'a> {
    heap: BinaryHeap<Reverse<(Observation, usize)>>,
    streams: Vec<BlockArrivals<'a>>,
}

impl<'a> MergedArrivals<'a> {
    /// Merge the given streams.
    pub fn new(mut streams: Vec<BlockArrivals<'a>>) -> MergedArrivals<'a> {
        let mut heap = BinaryHeap::with_capacity(streams.len());
        for (i, s) in streams.iter_mut().enumerate() {
            if let Some(obs) = s.next() {
                heap.push(Reverse((obs, i)));
            }
        }
        MergedArrivals { heap, streams }
    }
}

impl Iterator for MergedArrivals<'_> {
    type Item = Observation;

    fn next(&mut self) -> Option<Observation> {
        let Reverse((obs, i)) = self.heap.pop()?;
        if let Some(next) = self.streams[i].next() {
            self.heap.push(Reverse((next, i)));
        }
        Some(obs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::AsId;

    fn profile(rate: f64, amplitude: f64) -> BlockProfile {
        BlockProfile {
            prefix: "10.0.0.0/24".parse().unwrap(),
            as_id: AsId(1),
            base_rate: rate,
            diurnal_amplitude: amplitude,
            phase_secs: 0,
            response_rate: 1.0,
            weekend_factor: 1.0,
        }
    }

    fn window() -> Interval {
        Interval::from_secs(0, 86_400)
    }

    #[test]
    fn diurnal_factor_properties() {
        // mean over a day ≈ 1
        let mean: f64 = (0..86_400)
            .step_by(60)
            .map(|t| diurnal_factor(UnixTime(t), 0.8, 0))
            .sum::<f64>()
            / 1_440.0;
        assert!((mean - 1.0).abs() < 0.01, "mean {mean}");
        // amplitude 0 → constant
        assert_eq!(diurnal_factor(UnixTime(12_345), 0.0, 0), 1.0);
        // phase shifts the curve
        let a = diurnal_factor(UnixTime(0), 0.5, 0);
        let b = diurnal_factor(UnixTime(0), 0.5, 6 * 3_600);
        assert!((a - b).abs() > 0.2);
        // never negative
        for t in (0..86_400).step_by(600) {
            assert!(diurnal_factor(UnixTime(t), 0.95, 3_600) >= 0.0);
        }
    }

    #[test]
    fn arrival_count_matches_rate() {
        let p = profile(0.05, 0.3);
        let n = BlockArrivals::new(&p, None, window(), 1).count() as f64;
        let expected = 0.05 * 86_400.0;
        assert!(
            (n - expected).abs() < expected * 0.15,
            "{n} arrivals vs expected {expected}"
        );
    }

    #[test]
    fn arrivals_are_time_ordered_and_in_window() {
        let p = profile(0.02, 0.6);
        let times: Vec<UnixTime> = BlockArrivals::new(&p, None, window(), 2)
            .map(|o| o.time)
            .collect();
        assert!(!times.is_empty());
        for w in times.windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert!(times.first().unwrap().secs() < 86_400);
        assert!(times.last().unwrap().secs() < 86_400);
    }

    #[test]
    fn outage_silences_traffic() {
        let p = profile(0.1, 0.0);
        let down = IntervalSet::singleton(Interval::from_secs(10_000, 20_000));
        let times: Vec<u64> = BlockArrivals::new(&p, Some(&down), window(), 3)
            .map(|o| o.time.secs())
            .collect();
        assert!(!times.is_empty());
        assert!(
            times.iter().all(|&t| !(10_000..20_000).contains(&t)),
            "arrivals during outage"
        );
        // traffic resumes after the outage
        assert!(times.iter().any(|&t| t >= 20_000));
    }

    #[test]
    fn zero_rate_block_is_silent() {
        let p = profile(0.0, 0.0);
        assert_eq!(BlockArrivals::new(&p, None, window(), 4).count(), 0);
    }

    #[test]
    fn determinism_per_seed() {
        let p = profile(0.05, 0.5);
        let a: Vec<_> = BlockArrivals::new(&p, None, window(), 9).collect();
        let b: Vec<_> = BlockArrivals::new(&p, None, window(), 9).collect();
        assert_eq!(a, b);
        let c: Vec<_> = BlockArrivals::new(&p, None, window(), 10).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn diurnal_blocks_cluster_arrivals() {
        // With extreme amplitude, the peak half-day should carry clearly
        // more traffic than the trough half-day.
        let p = profile(0.05, 0.95);
        let times: Vec<u64> = BlockArrivals::new(&p, None, window(), 5)
            .map(|o| o.time.secs())
            .collect();
        // sin > 0 for t in (0, 43200): that's the peak half.
        let peak = times.iter().filter(|&&t| t < 43_200).count();
        let trough = times.len() - peak;
        assert!(
            peak as f64 > trough as f64 * 1.5,
            "peak {peak} vs trough {trough}"
        );
    }

    #[test]
    fn weekend_factor_damps_weekend_traffic() {
        let mut p = profile(0.05, 0.0);
        p.weekend_factor = 0.5;
        // one week of arrivals
        let week = Interval::from_secs(0, 7 * 86_400);
        let times: Vec<u64> = BlockArrivals::new(&p, None, week, 11)
            .map(|o| o.time.secs())
            .collect();
        let weekend = times.iter().filter(|&&t| is_weekend(UnixTime(t))).count() as f64;
        let weekday = (times.len() as f64) - weekend;
        // weekends are 2 of 7 days at half rate: expect ratio ≈ 0.5·2/5
        // per-day comparison: weekend/day vs weekday/day ≈ 0.5
        let per_weekend_day = weekend / 2.0;
        let per_weekday_day = weekday / 5.0;
        let ratio = per_weekend_day / per_weekday_day;
        assert!((0.4..0.6).contains(&ratio), "weekend damping ratio {ratio}");
        // and is_weekend itself marks exactly days 5,6
        assert!(!is_weekend(UnixTime(4 * 86_400)));
        assert!(is_weekend(UnixTime(5 * 86_400)));
        assert!(is_weekend(UnixTime(6 * 86_400 + 86_399)));
        assert!(!is_weekend(UnixTime(7 * 86_400)));
    }

    #[test]
    fn merged_stream_is_sorted_and_complete() {
        let p1 = profile(0.03, 0.2);
        let mut p2 = profile(0.02, 0.2);
        p2.prefix = "10.0.1.0/24".parse().unwrap();
        let s1 = BlockArrivals::new(&p1, None, window(), 6);
        let s2 = BlockArrivals::new(&p2, None, window(), 6);
        let n1 = BlockArrivals::new(&p1, None, window(), 6).count();
        let n2 = BlockArrivals::new(&p2, None, window(), 6).count();
        let merged: Vec<Observation> = MergedArrivals::new(vec![s1, s2]).collect();
        assert_eq!(merged.len(), n1 + n2);
        for w in merged.windows(2) {
            assert!(w[0].time <= w[1].time, "unsorted merge");
        }
        // both blocks present
        assert!(merged.iter().any(|o| o.block == p1.prefix));
        assert!(merged.iter().any(|o| o.block == p2.prefix));
    }

    #[test]
    fn merge_of_nothing_is_empty() {
        let merged: Vec<Observation> = MergedArrivals::new(vec![]).collect();
        assert!(merged.is_empty());
    }
}
