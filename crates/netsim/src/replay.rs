//! Real-time / accelerated replay pacing for live service mode.
//!
//! A finished scenario is a sorted list of observations with simulated
//! timestamps. The `serve` daemon wants to *re-live* that feed: release
//! each observation when its simulated instant arrives on the wall
//! clock, optionally compressed by an acceleration factor (`accel = 60`
//! replays an hour of simulated traffic in one wall-clock minute).
//!
//! [`ReplayClock`] is the mapping between the two time bases. It is
//! deliberately tiny and free of I/O: callers ask "what simulated time
//! is it now?" ([`ReplayClock::now`]) and "how long until simulated
//! instant `t`?" ([`ReplayClock::wall_delay_until`]), and do their own
//! sleeping — which keeps the pacing logic testable and lets a daemon
//! interleave sleeps with shutdown checks.

use outage_types::UnixTime;
use std::time::{Duration, Instant};

/// Maps wall-clock time onto an accelerated simulated-time axis.
#[derive(Debug, Clone)]
pub struct ReplayClock {
    /// Simulated instant corresponding to `origin`.
    sim_start: UnixTime,
    /// Simulated seconds per wall-clock second (≥ 1 in practice; the
    /// constructor clamps non-finite or non-positive values to 1).
    accel: f64,
    /// Wall-clock anchor.
    origin: Instant,
}

impl ReplayClock {
    /// A clock that starts *now*, with simulated time `sim_start`
    /// advancing `accel` simulated seconds per wall second.
    pub fn new(sim_start: UnixTime, accel: f64) -> ReplayClock {
        let accel = if accel.is_finite() && accel > 0.0 {
            accel
        } else {
            1.0
        };
        ReplayClock {
            sim_start,
            accel,
            origin: Instant::now(),
        }
    }

    /// The acceleration factor in force.
    pub fn accel(&self) -> f64 {
        self.accel
    }

    /// The simulated instant the replay began at.
    pub fn sim_start(&self) -> UnixTime {
        self.sim_start
    }

    /// Current simulated time.
    pub fn now(&self) -> UnixTime {
        let elapsed = self.origin.elapsed().as_secs_f64();
        let advanced = (elapsed * self.accel).floor() as u64;
        UnixTime(self.sim_start.secs().saturating_add(advanced))
    }

    /// Wall-clock delay until simulated instant `t` arrives (zero if it
    /// already has). Callers sleep in bounded slices of this so they can
    /// keep polling a shutdown flag.
    pub fn wall_delay_until(&self, t: UnixTime) -> Duration {
        let ahead = t.secs().saturating_sub(self.now().secs());
        if ahead == 0 {
            return Duration::ZERO;
        }
        Duration::from_secs_f64(ahead as f64 / self.accel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn now_starts_at_sim_start() {
        let clock = ReplayClock::new(UnixTime(1_000), 3_600.0);
        let now = clock.now();
        assert!(now.secs() >= 1_000);
        // Even a slow test machine won't burn a wall second here.
        assert!(now.secs() < 1_000 + 3_600);
    }

    #[test]
    fn accelerated_time_advances_faster_than_wall() {
        let clock = ReplayClock::new(UnixTime(0), 100_000.0);
        std::thread::sleep(Duration::from_millis(20));
        assert!(clock.now().secs() >= 1_000, "100k accel: 20ms ≥ 2000 sim-s");
    }

    #[test]
    fn delay_for_past_instants_is_zero() {
        let clock = ReplayClock::new(UnixTime(5_000), 60.0);
        assert_eq!(clock.wall_delay_until(UnixTime(4_000)), Duration::ZERO);
        assert_eq!(clock.wall_delay_until(UnixTime(5_000)), Duration::ZERO);
    }

    #[test]
    fn delay_scales_with_accel() {
        let clock = ReplayClock::new(UnixTime(0), 10.0);
        let d = clock.wall_delay_until(UnixTime(100));
        // 100 sim-seconds at 10× ≈ 10 wall seconds (minus test runtime).
        assert!(d <= Duration::from_secs(10));
        assert!(d >= Duration::from_secs(8));
    }

    #[test]
    fn bogus_accel_is_clamped() {
        assert_eq!(ReplayClock::new(UnixTime(0), 0.0).accel(), 1.0);
        assert_eq!(ReplayClock::new(UnixTime(0), -3.0).accel(), 1.0);
        assert_eq!(ReplayClock::new(UnixTime(0), f64::NAN).accel(), 1.0);
    }
}
