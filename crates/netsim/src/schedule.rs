//! Ground-truth outage schedules.
//!
//! The schedule is the simulator's oracle: for every block, the exact
//! intervals during which it was disconnected. Detectors never see it;
//! the evaluation harness compares their verdicts against it (and against
//! each other, mirroring the paper's use of Trinocular and RIPE Atlas as
//! imperfect references).

use crate::stats::{sample_log_uniform, seed_for};
use crate::topology::Internet;
use outage_types::{AddrFamily, Interval, IntervalSet, Prefix, Timeline, UnixTime};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Parameters for random outage injection.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OutageConfig {
    /// Probability that a given block suffers at least one *long* outage
    /// (≥ 11 min) per simulated day.
    pub p_long_per_day: f64,
    /// Probability of at least one *short* outage (5–11 min) per day.
    pub p_short_per_day: f64,
    /// Probability that a whole AS suffers an outage per day (affects all
    /// of its blocks simultaneously — the correlated-failure case).
    pub p_as_per_day: f64,
    /// Long-outage duration range in seconds (log-uniform).
    pub long_duration: (u64, u64),
    /// Short-outage duration range in seconds (log-uniform).
    pub short_duration: (u64, u64),
    /// Multiplier applied to per-block outage probabilities for IPv6
    /// blocks — the paper found IPv6 *less* reliable than IPv4 (12 % vs
    /// 5.5 % of measurable blocks with a 10-min outage), so > 1 here.
    pub v6_rate_multiplier: f64,
}

impl Default for OutageConfig {
    fn default() -> Self {
        OutageConfig {
            p_long_per_day: 0.06,
            p_short_per_day: 0.05,
            p_as_per_day: 0.01,
            long_duration: (660, 4 * 3_600),
            short_duration: (300, 660),
            v6_rate_multiplier: 2.2,
        }
    }
}

/// Ground truth: per-block down intervals over a window.
#[derive(Debug, Clone)]
pub struct OutageSchedule {
    window: Interval,
    down: HashMap<Prefix, IntervalSet>,
}

impl OutageSchedule {
    /// An empty (always-up) schedule over `window`.
    pub fn new(window: Interval) -> OutageSchedule {
        OutageSchedule {
            window,
            down: HashMap::new(),
        }
    }

    /// The observation window.
    pub fn window(&self) -> Interval {
        self.window
    }

    /// Record a down interval for one block (clipped to the window).
    pub fn add(&mut self, prefix: Prefix, interval: Interval) {
        let clipped = interval.intersect(&self.window);
        if !clipped.is_empty() {
            self.down.entry(prefix).or_default().insert(clipped);
        }
    }

    /// Ground-truth timeline for a block (all-up if never scheduled).
    pub fn truth(&self, prefix: &Prefix) -> Timeline {
        Timeline::from_down(
            self.window,
            self.down.get(prefix).cloned().unwrap_or_default(),
        )
    }

    /// The raw down set for a block, if any outage was scheduled.
    pub fn down_set(&self, prefix: &Prefix) -> Option<&IntervalSet> {
        self.down.get(prefix)
    }

    /// Whether a block is up at an instant. Blocks never scheduled are up.
    pub fn is_up(&self, prefix: &Prefix, t: UnixTime) -> bool {
        self.down.get(prefix).is_none_or(|s| !s.contains(t))
    }

    /// Blocks that have at least one scheduled outage.
    pub fn blocks_with_outages(&self) -> impl Iterator<Item = (&Prefix, &IntervalSet)> {
        self.down.iter().filter(|(_, s)| !s.is_empty())
    }

    /// Number of blocks with at least one outage of at least `min_secs`.
    pub fn count_blocks_with_outage(&self, family: AddrFamily, min_secs: u64) -> usize {
        self.down
            .iter()
            .filter(|(p, s)| p.family() == family && !s.filter_min_duration(min_secs).is_empty())
            .count()
    }

    /// Generate a random schedule for `internet` over `window`.
    ///
    /// Outages are drawn independently per block (plus correlated per-AS
    /// events), with probabilities scaled by window length and by the
    /// IPv6 multiplier for /48s. Fully deterministic under `seed`.
    pub fn generate(
        internet: &Internet,
        config: &OutageConfig,
        window: Interval,
        seed: u64,
    ) -> OutageSchedule {
        let mut schedule = OutageSchedule::new(window);
        let days = window.duration() as f64 / 86_400.0;

        // Per-AS correlated outages first.
        for asp in internet.ases() {
            let mut rng =
                SmallRng::seed_from_u64(seed_for(seed, format!("as-outage-{}", asp.id).as_bytes()));
            if rng.gen::<f64>() < (config.p_as_per_day * days).min(1.0) {
                let iv = random_interval(&mut rng, window, config.long_duration);
                for b in internet.blocks_of_as(asp.id) {
                    schedule.add(b.prefix, iv);
                }
            }
        }

        // Independent per-block outages.
        for b in internet.blocks() {
            let mult = match b.prefix.family() {
                AddrFamily::V4 => 1.0,
                AddrFamily::V6 => config.v6_rate_multiplier,
            };
            let mut rng = SmallRng::seed_from_u64(seed_for(
                seed,
                format!("block-outage-{}", b.prefix).as_bytes(),
            ));
            let p_long = (config.p_long_per_day * days * mult).min(1.0);
            if rng.gen::<f64>() < p_long {
                let iv = random_interval(&mut rng, window, config.long_duration);
                schedule.add(b.prefix, iv);
            }
            let p_short = (config.p_short_per_day * days * mult).min(1.0);
            if rng.gen::<f64>() < p_short {
                let iv = random_interval(&mut rng, window, config.short_duration);
                schedule.add(b.prefix, iv);
            }
        }
        schedule
    }
}

fn random_interval(rng: &mut SmallRng, window: Interval, dur_range: (u64, u64)) -> Interval {
    let dur = sample_log_uniform(rng, dur_range.0 as f64, dur_range.1 as f64) as u64;
    let span = window.duration().saturating_sub(dur).max(1);
    let start = window.start + rng.gen_range(0..span);
    Interval::new(start, (start + dur).min(window.end))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::TopologyConfig;

    fn window() -> Interval {
        Interval::from_secs(0, 86_400)
    }

    #[test]
    fn empty_schedule_is_all_up() {
        let s = OutageSchedule::new(window());
        let p: Prefix = "10.0.0.0/24".parse().unwrap();
        assert!(s.is_up(&p, UnixTime(1_000)));
        assert_eq!(s.truth(&p).down_secs(), 0);
        assert!(s.down_set(&p).is_none());
    }

    #[test]
    fn add_and_query() {
        let mut s = OutageSchedule::new(window());
        let p: Prefix = "10.0.0.0/24".parse().unwrap();
        s.add(p, Interval::from_secs(1_000, 2_000));
        assert!(!s.is_up(&p, UnixTime(1_500)));
        assert!(s.is_up(&p, UnixTime(2_000)));
        assert_eq!(s.truth(&p).down_secs(), 1_000);
    }

    #[test]
    fn add_clips_to_window() {
        let mut s = OutageSchedule::new(window());
        let p: Prefix = "10.0.0.0/24".parse().unwrap();
        s.add(p, Interval::from_secs(80_000, 100_000));
        assert_eq!(s.truth(&p).down_secs(), 6_400);
        // fully outside: ignored
        s.add(p, Interval::from_secs(100_000, 110_000));
        assert_eq!(s.truth(&p).down_secs(), 6_400);
    }

    #[test]
    fn generate_is_deterministic() {
        let w = Internet::generate(&TopologyConfig::default(), 3);
        let a = OutageSchedule::generate(&w, &OutageConfig::default(), window(), 11);
        let b = OutageSchedule::generate(&w, &OutageConfig::default(), window(), 11);
        for blk in w.blocks() {
            assert_eq!(a.truth(&blk.prefix), b.truth(&blk.prefix));
        }
    }

    #[test]
    fn generate_produces_outages_at_expected_scale() {
        let cfg = TopologyConfig {
            num_as: 150,
            ..TopologyConfig::default()
        };
        let w = Internet::generate(&cfg, 4);
        let oc = OutageConfig::default();
        let s = OutageSchedule::generate(&w, &oc, window(), 9);
        let n_blocks = w.blocks().len();
        let n_with = s.blocks_with_outages().count();
        // With p_long=0.06, p_short=0.05, p_as=0.01 we expect roughly
        // 8-20% of blocks affected; allow generous slack.
        let frac = n_with as f64 / n_blocks as f64;
        assert!(
            (0.03..0.4).contains(&frac),
            "{n_with}/{n_blocks} blocks affected"
        );
        // durations respect the window
        for (_, set) in s.blocks_with_outages() {
            for iv in set.iter() {
                assert!(iv.start >= window().start && iv.end <= window().end);
                assert!(iv.duration() >= 300);
            }
        }
    }

    #[test]
    fn v6_outage_rate_exceeds_v4() {
        let cfg = TopologyConfig {
            num_as: 400,
            v6_as_fraction: 0.5,
            ..TopologyConfig::default()
        };
        let w = Internet::generate(&cfg, 5);
        let s = OutageSchedule::generate(&w, &OutageConfig::default(), window(), 6);
        let v4_total = w.count_of(AddrFamily::V4);
        let v6_total = w.count_of(AddrFamily::V6);
        let v4_out = s.count_blocks_with_outage(AddrFamily::V4, 600);
        let v6_out = s.count_blocks_with_outage(AddrFamily::V6, 600);
        let v4_rate = v4_out as f64 / v4_total as f64;
        let v6_rate = v6_out as f64 / v6_total as f64;
        assert!(
            v6_rate > v4_rate,
            "v6 rate {v6_rate:.3} should exceed v4 rate {v4_rate:.3}"
        );
    }

    #[test]
    fn as_outages_hit_all_blocks_of_the_as() {
        let cfg = TopologyConfig {
            num_as: 30,
            ..TopologyConfig::default()
        };
        let w = Internet::generate(&cfg, 8);
        let oc = OutageConfig {
            p_as_per_day: 1.0, // force AS outages
            p_long_per_day: 0.0,
            p_short_per_day: 0.0,
            ..OutageConfig::default()
        };
        let s = OutageSchedule::generate(&w, &oc, window(), 2);
        for asp in w.ases() {
            // Every block of the AS shares at least one identical interval.
            let sets: Vec<_> = w
                .blocks_of_as(asp.id)
                .map(|b| s.down_set(&b.prefix).cloned().unwrap_or_default())
                .collect();
            assert!(!sets.is_empty());
            let first = &sets[0];
            assert!(!first.is_empty(), "AS outage missing for {}", asp.id);
            for other in &sets[1..] {
                assert_eq!(first, other);
            }
        }
    }
}
