//! The active-measurement side of the simulated network.
//!
//! Active systems (Trinocular, RIPE-Atlas-style probes) interact with the
//! world by *probing*: send a packet to an address, maybe get a reply.
//! [`NetworkOracle`] answers those probes from the ground truth plus each
//! block's responsiveness profile, without ever revealing the truth
//! directly — probers must infer it, exactly like their real counterparts.

use crate::schedule::OutageSchedule;
use crate::stats::seed_for;
use crate::topology::Internet;
use outage_types::{Prefix, UnixTime};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Outcome of a single probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeOutcome {
    /// A (positive) reply arrived.
    Reply,
    /// Nothing came back before the prober's timeout.
    Timeout,
}

/// Answers probes against the simulated world.
pub struct NetworkOracle<'a> {
    internet: &'a Internet,
    schedule: &'a OutageSchedule,
    /// Probability that a probe or its reply is lost even when the target
    /// block is up and the address responsive (background packet loss).
    pub loss_rate: f64,
    rng: SmallRng,
}

impl<'a> NetworkOracle<'a> {
    /// Build an oracle over a world and its ground truth.
    pub fn new(internet: &'a Internet, schedule: &'a OutageSchedule, seed: u64) -> Self {
        NetworkOracle {
            internet,
            schedule,
            loss_rate: 0.01,
            rng: SmallRng::seed_from_u64(seed_for(seed, b"oracle")),
        }
    }

    /// The world under measurement.
    pub fn internet(&self) -> &'a Internet {
        self.internet
    }

    /// The ground truth (for evaluation code only — detectors must not
    /// call this).
    pub fn ground_truth(&self) -> &'a OutageSchedule {
        self.schedule
    }

    /// Probe one address of `block` at time `t`.
    ///
    /// Replies arrive iff the block exists, is up at `t`, the probed
    /// address is responsive (per-block `A(E(b))` Bernoulli draw), and the
    /// packet survives background loss.
    pub fn probe(&mut self, block: &Prefix, t: UnixTime) -> ProbeOutcome {
        let Some(profile) = self.internet.block(block) else {
            return ProbeOutcome::Timeout;
        };
        if !self.schedule.is_up(block, t) {
            return ProbeOutcome::Timeout;
        }
        if self.rng.gen::<f64>() >= profile.response_rate {
            return ProbeOutcome::Timeout;
        }
        if self.rng.gen::<f64>() < self.loss_rate {
            return ProbeOutcome::Timeout;
        }
        ProbeOutcome::Reply
    }

    /// Probe `n` distinct addresses at once and count replies — the
    /// "up to 15 adaptive probes" pattern.
    pub fn probe_burst(&mut self, block: &Prefix, t: UnixTime, n: u32) -> u32 {
        (0..n)
            .filter(|_| self.probe(block, t) == ProbeOutcome::Reply)
            .count() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::OutageSchedule;
    use crate::topology::{Internet, TopologyConfig};
    use outage_types::Interval;

    fn setup() -> (Internet, OutageSchedule) {
        let internet = Internet::generate(&TopologyConfig::default(), 20);
        let window = Interval::from_secs(0, 86_400);
        let mut schedule = OutageSchedule::new(window);
        let victim = internet.blocks()[0].prefix;
        schedule.add(victim, Interval::from_secs(10_000, 20_000));
        (internet, schedule)
    }

    #[test]
    fn down_blocks_never_reply() {
        let (internet, schedule) = setup();
        let victim = internet.blocks()[0].prefix;
        let mut oracle = NetworkOracle::new(&internet, &schedule, 1);
        for t in (10_000..20_000).step_by(500) {
            assert_eq!(oracle.probe(&victim, UnixTime(t)), ProbeOutcome::Timeout);
        }
    }

    #[test]
    fn up_blocks_reply_at_roughly_their_response_rate() {
        let (internet, schedule) = setup();
        let block = &internet.blocks()[1];
        let mut oracle = NetworkOracle::new(&internet, &schedule, 2);
        oracle.loss_rate = 0.0;
        let n = 5_000;
        let replies = (0..n)
            .filter(|i| oracle.probe(&block.prefix, UnixTime(30_000 + i)) == ProbeOutcome::Reply)
            .count();
        let observed = replies as f64 / n as f64;
        assert!(
            (observed - block.response_rate).abs() < 0.05,
            "observed {observed}, profile {}",
            block.response_rate
        );
    }

    #[test]
    fn unknown_blocks_time_out() {
        let (internet, schedule) = setup();
        let mut oracle = NetworkOracle::new(&internet, &schedule, 3);
        let ghost: Prefix = "203.0.113.0/24".parse().unwrap();
        assert_eq!(oracle.probe(&ghost, UnixTime(0)), ProbeOutcome::Timeout);
    }

    #[test]
    fn probe_burst_counts_replies() {
        let (internet, schedule) = setup();
        let block = &internet.blocks()[1];
        let mut oracle = NetworkOracle::new(&internet, &schedule, 4);
        oracle.loss_rate = 0.0;
        let replies = oracle.probe_burst(&block.prefix, UnixTime(40_000), 100);
        assert!(replies > 0);
        assert!(replies <= 100);
        // during the victim's outage a burst yields zero
        let victim = internet.blocks()[0].prefix;
        assert_eq!(oracle.probe_burst(&victim, UnixTime(15_000), 15), 0);
    }

    #[test]
    fn loss_rate_suppresses_some_replies() {
        let (internet, schedule) = setup();
        let block = &internet.blocks()[1];
        let mut lossless = NetworkOracle::new(&internet, &schedule, 5);
        lossless.loss_rate = 0.0;
        let mut lossy = NetworkOracle::new(&internet, &schedule, 5);
        lossy.loss_rate = 0.5;
        let n = 2_000;
        let r0 = (0..n)
            .filter(|i| lossless.probe(&block.prefix, UnixTime(30_000 + i)) == ProbeOutcome::Reply)
            .count();
        let r1 = (0..n)
            .filter(|i| lossy.probe(&block.prefix, UnixTime(30_000 + i)) == ProbeOutcome::Reply)
            .count();
        assert!(r1 < r0, "loss {r1} !< lossless {r0}");
    }
}
