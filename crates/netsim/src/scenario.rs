//! Scenario presets: world + ground truth + observation window.
//!
//! A [`Scenario`] bundles everything one experiment needs: the generated
//! [`Internet`], the ground-truth [`OutageSchedule`], and the observation
//! window, with named presets matching the paper's experiments (see
//! DESIGN.md's experiment index). All presets are deterministic in
//! `(preset, size, seed)`.

use crate::arrivals::{BlockArrivals, MergedArrivals};
use crate::oracle::NetworkOracle;
use crate::schedule::{OutageConfig, OutageSchedule};
use crate::topology::{Internet, TopologyConfig};
use outage_types::{durations, Interval, Observation, Prefix, UnixTime};
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A Bernoulli-thinned view of the merged observation stream — what a
/// second passive service sees of the same world. Produced by
/// [`Scenario::observations_for_service`].
pub struct ThinnedArrivals<'a> {
    inner: MergedArrivals<'a>,
    rng: rand::rngs::SmallRng,
    keep: f64,
}

impl Iterator for ThinnedArrivals<'_> {
    type Item = Observation;

    fn next(&mut self) -> Option<Observation> {
        loop {
            let obs = self.inner.next()?;
            if self.rng.gen::<f64>() < self.keep {
                return Some(obs);
            }
        }
    }
}

/// A block-predicate-filtered view of the merged observation stream —
/// the shard one federated vantage ingests. Produced by
/// [`Scenario::observations_where`].
pub struct PartitionedArrivals<'a, F> {
    inner: MergedArrivals<'a>,
    keep: F,
}

impl<F: FnMut(&Prefix) -> bool> Iterator for PartitionedArrivals<'_, F> {
    type Item = Observation;

    fn next(&mut self) -> Option<Observation> {
        loop {
            let obs = self.inner.next()?;
            if (self.keep)(&obs.block) {
                return Some(obs);
            }
        }
    }
}

/// Full description of a scenario, serializable for provenance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// Human-readable name (shows up in reports).
    pub name: String,
    /// Topology generation parameters.
    pub topology: TopologyConfig,
    /// Outage injection parameters.
    pub outages: OutageConfig,
    /// Observation window length in seconds.
    pub window_secs: u64,
    /// Master seed.
    pub seed: u64,
}

/// A generated world ready for measurement.
pub struct Scenario {
    /// The configuration this scenario was built from.
    pub config: ScenarioConfig,
    /// The synthetic Internet.
    pub internet: Internet,
    /// Ground-truth outages.
    pub schedule: OutageSchedule,
}

impl Scenario {
    /// Build a scenario from a config.
    pub fn build(config: ScenarioConfig) -> Scenario {
        let internet = Internet::generate(&config.topology, config.seed);
        let window = Interval::new(UnixTime::EPOCH, UnixTime(config.window_secs));
        let schedule = OutageSchedule::generate(&internet, &config.outages, window, config.seed);
        Scenario {
            config,
            internet,
            schedule,
        }
    }

    /// The observation window.
    pub fn window(&self) -> Interval {
        self.schedule.window()
    }

    /// The merged, time-ordered passive observation stream — what the
    /// telescope at the service would deliver.
    pub fn observations(&self) -> MergedArrivals<'_> {
        let streams = self
            .internet
            .blocks()
            .iter()
            .map(|b| {
                BlockArrivals::new(
                    b,
                    self.schedule.down_set(&b.prefix),
                    self.window(),
                    self.config.seed,
                )
            })
            .collect();
        MergedArrivals::new(streams)
    }

    /// Arrivals of a single block (handy for focused tests/examples).
    pub fn block_observations(&self, prefix: &outage_types::Prefix) -> Option<BlockArrivals<'_>> {
        let profile = self.internet.block(prefix)?;
        Some(BlockArrivals::new(
            profile,
            self.schedule.down_set(prefix),
            self.window(),
            self.config.seed,
        ))
    }

    /// An oracle for active probing against this world.
    pub fn oracle(&self) -> NetworkOracle<'_> {
        NetworkOracle::new(&self.internet, &self.schedule, self.config.seed)
    }

    /// The observation stream as seen by a *different* passive service.
    ///
    /// A second vantage (another root letter, a popular website, an NTP
    /// pool) sees an independent Bernoulli thinning of each block's
    /// queries: `keep` is the fraction of the block's traffic that goes
    /// to this service. Thinning a Poisson process yields a Poisson
    /// process, so every detector assumption still holds — just at a
    /// lower rate. Streams for different `service` names are independent.
    pub fn observations_for_service(&self, service: &str, keep: f64) -> ThinnedArrivals<'_> {
        assert!((0.0..=1.0).contains(&keep), "keep must be a fraction");
        let service_seed = crate::stats::seed_for(self.config.seed, service.as_bytes());
        ThinnedArrivals {
            inner: self.observations(),
            rng: rand::rngs::SmallRng::seed_from_u64(service_seed),
            keep,
        }
    }

    /// The observation stream restricted to blocks a predicate accepts —
    /// the vantage-split generalization of
    /// [`Scenario::observations_for_service`]. Where service thinning
    /// drops individual *packets* probabilistically, a vantage split
    /// routes whole *blocks* deterministically: the caller supplies the
    /// block predicate (e.g. a federation plan's per-vantage `sees`).
    /// Each stream stays time-ordered, and the streams of a complete
    /// partition union back to exactly [`Scenario::observations`].
    pub fn observations_where<F>(&self, keep: F) -> PartitionedArrivals<'_, F>
    where
        F: FnMut(&Prefix) -> bool,
    {
        PartitionedArrivals {
            inner: self.observations(),
            keep,
        }
    }

    /// Collect the entire observation stream into memory. Convenient for
    /// multi-pass detectors; scales with total traffic, so prefer
    /// [`Scenario::observations`] for large runs.
    pub fn collect_observations(&self) -> Vec<Observation> {
        self.observations().collect()
    }

    // ---- presets ------------------------------------------------------

    /// Tiny world for unit tests: ~40 ASes, one day.
    pub fn quick(seed: u64) -> Scenario {
        Scenario::build(ScenarioConfig {
            name: "quick".into(),
            topology: TopologyConfig::default(),
            outages: OutageConfig::default(),
            window_secs: durations::DAY,
            seed,
        })
    }

    /// Table 1/2 preset: one day, long-outage-dominated schedule, like the
    /// paper's 2019-01-10 comparison against Trinocular.
    pub fn table1(num_as: u32, seed: u64) -> Scenario {
        Scenario::build(ScenarioConfig {
            name: "table1-long-outages".into(),
            topology: TopologyConfig {
                num_as,
                ..TopologyConfig::default()
            },
            outages: OutageConfig {
                p_long_per_day: 0.08,
                p_short_per_day: 0.02,
                ..OutageConfig::default()
            },
            window_secs: durations::DAY,
            seed,
        })
    }

    /// Table 3 preset: one day, rich in short (5–11 min) outages, for the
    /// event-matched comparison against the Atlas-style mesh.
    pub fn table3(num_as: u32, seed: u64) -> Scenario {
        Scenario::build(ScenarioConfig {
            name: "table3-short-outages".into(),
            topology: TopologyConfig {
                num_as,
                // Denser blocks so 5-minute bins are widely feasible, as in
                // the paper's 600 dual-covered blocks.
                rate_mu: -3.2,
                ..TopologyConfig::default()
            },
            outages: OutageConfig {
                p_long_per_day: 0.03,
                p_short_per_day: 0.25,
                ..OutageConfig::default()
            },
            window_secs: durations::DAY,
            seed,
        })
    }

    /// Figure 1 preset: the temporal/spatial precision trade-off sweep
    /// wants the full dense→sparse spectrum, so a wide rate distribution.
    pub fn tradeoff(num_as: u32, seed: u64) -> Scenario {
        Scenario::build(ScenarioConfig {
            name: "fig1-tradeoff".into(),
            topology: TopologyConfig {
                num_as,
                rate_sigma: 2.2,
                ..TopologyConfig::default()
            },
            outages: OutageConfig::default(),
            window_secs: durations::DAY,
            seed,
        })
    }

    /// Figure 2a preset: one representative day with substantial IPv6
    /// deployment, for the v4-vs-v6 outage comparison. Outage injection
    /// rates are calibrated so ~5 % of measurable IPv4 blocks see a
    /// 10-minute outage (the paper's 2019-01-10 figure), with the IPv6
    /// multiplier pushing /48s to roughly double that.
    pub fn ipv6_day(num_as: u32, seed: u64) -> Scenario {
        Scenario::build(ScenarioConfig {
            name: "fig2-ipv6-day".into(),
            topology: TopologyConfig {
                num_as,
                v6_as_fraction: 0.45,
                v6_blocks_per_as: 4.0,
                ..TopologyConfig::default()
            },
            outages: OutageConfig {
                p_long_per_day: 0.045,
                p_short_per_day: 0.03,
                p_as_per_day: 0.005,
                ..OutageConfig::default()
            },
            window_secs: durations::DAY,
            seed,
        })
    }

    /// Week preset: seven days (the paper's full validation window,
    /// 2019-01-09 → 2019-01-15), with weekly seasonality — weekend
    /// traffic at 70 % of weekday levels — exercising the streaming
    /// monitor's daily recalibration.
    pub fn week(num_as: u32, seed: u64) -> Scenario {
        Scenario::build(ScenarioConfig {
            name: "week-validation".into(),
            topology: TopologyConfig {
                num_as,
                weekend_factor: 0.7,
                ..TopologyConfig::default()
            },
            outages: OutageConfig::default(),
            window_secs: durations::WEEK,
            seed,
        })
    }

    /// Paper-scale preset: the benchmark of record. The paper's B-root
    /// vantage tracks ~900k measurable blocks over multi-day windows,
    /// dominated by *sparse* blocks near the measurability floor; this
    /// preset reproduces that shape at a size CI-class machines can
    /// hold: a heavy-tailed per-block rate distribution (log-normal,
    /// median ≈ 4.5 × 10⁻⁵ q/s, σ = 2.0) whose mass sits far below one
    /// query per bin, a two-day window so diurnal learning and rotation
    /// both engage, and enough ASes that the default `num_as = 60_000`
    /// yields ≥ 500k blocks (~35M observations).
    ///
    /// The AS index occupies bits 16.. of the generated /24 addresses,
    /// so `num_as` must stay below 65 536 for prefixes to be unique —
    /// scale block count through `v4_blocks_per_as`, not more ASes.
    pub fn paper_scale(num_as: u32, seed: u64) -> Scenario {
        assert!(num_as < 65_536, "paper_scale: num_as must fit in 16 bits");
        Scenario::build(ScenarioConfig {
            name: "paper-scale".into(),
            topology: TopologyConfig {
                num_as,
                v4_blocks_per_as: 10.0,
                v6_as_fraction: 0.10,
                v6_blocks_per_as: 3.0,
                rate_mu: -10.0,
                rate_sigma: 2.0,
                rate_cap: 0.5,
                ..TopologyConfig::default()
            },
            outages: OutageConfig::default(),
            window_secs: 2 * durations::DAY,
            seed,
        })
    }

    /// Figure 2b preset: as [`Scenario::ipv6_day`], but ~78 % of blocks
    /// are *dark* — they exist (Trinocular probes them, the hitlist
    /// enumerates them) but never query the monitored service, modelling
    /// B-root's limited vantage (it sees only recursive resolvers,
    /// ≈ 20 % of the probe universe).
    pub fn ipv6_universe(num_as: u32, seed: u64) -> Scenario {
        Scenario::build(ScenarioConfig {
            name: "fig2b-ipv6-universe".into(),
            topology: TopologyConfig {
                num_as,
                v6_as_fraction: 0.45,
                v6_blocks_per_as: 4.0,
                dark_fraction: 0.78,
                ..TopologyConfig::default()
            },
            outages: OutageConfig::default(),
            window_secs: durations::DAY,
            seed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use outage_types::AddrFamily;

    #[test]
    fn quick_scenario_produces_traffic() {
        let s = Scenario::quick(1);
        let obs = s.collect_observations();
        assert!(obs.len() > 1_000, "only {} observations", obs.len());
        for w in obs.windows(2) {
            assert!(w[0].time <= w[1].time);
        }
        // every observation's block exists in the topology
        for o in obs.iter().take(100) {
            assert!(s.internet.block(&o.block).is_some());
        }
    }

    #[test]
    fn scenario_is_deterministic() {
        let a = Scenario::quick(7).collect_observations();
        let b = Scenario::quick(7).collect_observations();
        assert_eq!(a, b);
    }

    #[test]
    fn block_observations_matches_merged_stream() {
        let s = Scenario::quick(2);
        let block = s.internet.blocks()[0].prefix;
        let solo: Vec<_> = s.block_observations(&block).unwrap().collect();
        let from_merged: Vec<_> = s
            .collect_observations()
            .into_iter()
            .filter(|o| o.block == block)
            .collect();
        assert_eq!(solo, from_merged);
    }

    #[test]
    fn presets_differ_in_outage_mix() {
        let t1 = Scenario::table1(60, 5);
        let t3 = Scenario::table3(60, 5);
        let w = t1.window();
        let short = |s: &Scenario| {
            s.schedule
                .blocks_with_outages()
                .flat_map(|(_, set)| set.iter())
                .filter(|iv| iv.duration() < 660)
                .count()
        };
        let _ = w;
        assert!(
            short(&t3) > short(&t1),
            "table3 preset should be short-outage rich"
        );
    }

    #[test]
    fn thinned_service_view_is_a_subset_at_roughly_keep() {
        let s = Scenario::quick(4);
        let full: Vec<_> = s.collect_observations();
        let thin: Vec<_> = s.observations_for_service("c-root", 0.5).collect();
        // roughly half, and every observation appears in the full stream
        let ratio = thin.len() as f64 / full.len() as f64;
        assert!((0.45..0.55).contains(&ratio), "ratio {ratio}");
        let full_set: std::collections::HashSet<_> = full.iter().collect();
        assert!(thin.iter().all(|o| full_set.contains(o)));
        // deterministic per service name, different across names
        let thin2: Vec<_> = s.observations_for_service("c-root", 0.5).collect();
        assert_eq!(thin, thin2);
        let other: Vec<_> = s.observations_for_service("ntp-pool", 0.5).collect();
        assert_ne!(thin, other);
    }

    #[test]
    fn keep_one_is_identity_keep_zero_is_empty() {
        let s = Scenario::quick(5);
        assert_eq!(
            s.observations_for_service("x", 1.0).count(),
            s.observations().count()
        );
        assert_eq!(s.observations_for_service("x", 0.0).count(), 0);
    }

    #[test]
    fn paper_scale_has_heavy_tailed_sparse_density() {
        // Small-size build of the preset: the *shape* must hold at any
        // size — two-day window, rates spanning orders of magnitude,
        // and a population dominated by blocks too sparse to measure
        // alone (the paper's reason aggregation exists).
        let s = Scenario::paper_scale(60, 9);
        assert_eq!(s.window().duration(), 2 * durations::DAY);
        let rates: Vec<f64> = s
            .internet
            .blocks()
            .iter()
            .map(|b| b.base_rate)
            .filter(|&r| r > 0.0)
            .collect();
        let max = rates.iter().cloned().fold(0.0, f64::max);
        let min = rates.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max / min > 1e3, "span {min}..{max} not heavy-tailed");
        // Solo-measurability needs ≥ 4 queries in a 2-hour bin
        // (≈ 5.5 × 10⁻⁴ q/s); most of the population must sit below it.
        let sparse = rates.iter().filter(|&&r| r < 5.5e-4).count();
        assert!(
            sparse * 2 > rates.len(),
            "only {sparse}/{} blocks below the solo-measurable floor",
            rates.len()
        );
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(8))]

        /// The benchmark of record must be reproducible: identical
        /// `(size, seed)` ⇒ identical world and identical feed, and the
        /// size knob must not leak into previously generated ASes.
        #[test]
        fn paper_scale_deterministic_in_size_and_seed(
            num_as in 5u32..40,
            seed in 0u64..1_000,
        ) {
            let a = Scenario::paper_scale(num_as, seed);
            let b = Scenario::paper_scale(num_as, seed);
            proptest::prop_assert_eq!(a.internet.blocks().len(), b.internet.blocks().len());
            for (x, y) in a.internet.blocks().iter().zip(b.internet.blocks()) {
                proptest::prop_assert_eq!(x.prefix, y.prefix);
                proptest::prop_assert_eq!(x.base_rate, y.base_rate);
            }
            let oa: Vec<_> = a.observations().take(2_000).collect();
            let ob: Vec<_> = b.observations().take(2_000).collect();
            proptest::prop_assert_eq!(oa, ob);
        }
    }

    #[test]
    fn partitioned_streams_tile_the_full_stream() {
        let s = Scenario::quick(6);
        let full: Vec<_> = s.collect_observations();
        // Deterministic 3-way partition by a block hash.
        let shard_of = |p: &Prefix| match p {
            Prefix::V4 { addr, .. } => (addr >> 8) % 3,
            Prefix::V6 { addr, .. } => ((addr >> 80) % 3) as u32,
        };
        let shards: Vec<Vec<_>> = (0..3u32)
            .map(|v| s.observations_where(|p| shard_of(p) == v).collect())
            .collect();
        assert_eq!(shards.iter().map(Vec::len).sum::<usize>(), full.len());
        // Each shard is time-ordered, and the merge-sorted union is the
        // full stream exactly.
        for shard in &shards {
            assert!(shard.windows(2).all(|w| w[0].time <= w[1].time));
        }
        let mut union: Vec<_> = shards.concat();
        union.sort_by_key(|o| (o.time, o.block));
        let mut sorted_full = full.clone();
        sorted_full.sort_by_key(|o| (o.time, o.block));
        assert_eq!(union, sorted_full);
    }

    #[test]
    fn ipv6_day_has_substantial_v6() {
        let s = Scenario::ipv6_day(80, 3);
        let v6 = s.internet.count_of(AddrFamily::V6);
        let v4 = s.internet.count_of(AddrFamily::V4);
        assert!(v6 > 0);
        assert!(v6 as f64 / v4 as f64 > 0.1, "v6 {v6} vs v4 {v4}");
    }
}
