//! Statistical sampling helpers used by the simulator.
//!
//! The approved dependency set has `rand` but no distribution crate, so the
//! handful of distributions the simulator needs — normal, log-normal,
//! exponential, Poisson, Zipf — are implemented here from first principles.
//! All samplers take a caller-supplied RNG so simulation stays fully
//! deterministic under a fixed seed.

use rand::Rng;

/// Deterministic 64-bit mix (splitmix64). Used to derive independent
/// per-block RNG seeds from `(scenario seed, block identity)` so that the
/// arrival stream of one block never depends on how many other blocks the
/// run contains.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Combine a seed with an arbitrary byte string into a new seed.
pub fn seed_for(base: u64, tag: &[u8]) -> u64 {
    let mut h = splitmix64(base);
    for chunk in tag.chunks(8) {
        let mut w = [0u8; 8];
        w[..chunk.len()].copy_from_slice(chunk);
        h = splitmix64(h ^ u64::from_le_bytes(w));
    }
    h
}

/// A standard-normal sample via Box–Muller.
pub fn sample_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid u1 == 0 exactly (ln(0)).
    let u1: f64 = loop {
        let u = rng.gen::<f64>();
        if u > 1e-300 {
            break u;
        }
    };
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// A log-normal sample with the given parameters of the underlying normal.
///
/// Log-normal is the canonical model for per-block traffic rates: most
/// edge blocks send a trickle, a heavy tail sends a torrent — exactly the
/// dense/sparse spectrum the paper's per-block tuning exists for.
pub fn sample_lognormal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    (mu + sigma * sample_normal(rng)).exp()
}

/// An exponential sample with the given rate (events per second).
/// Inter-arrival times of a Poisson process.
pub fn sample_exp<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    debug_assert!(rate > 0.0);
    let u: f64 = loop {
        let u = rng.gen::<f64>();
        if u > 1e-300 {
            break u;
        }
    };
    -u.ln() / rate
}

/// A Poisson sample with mean `lambda`.
///
/// Knuth's product method below 30; normal approximation (rounded,
/// clamped at 0) above, which is plenty for traffic counts.
pub fn sample_poisson<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> u64 {
    if lambda <= 0.0 {
        return 0;
    }
    if lambda < 30.0 {
        let l = (-lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= rng.gen::<f64>();
            if p <= l {
                return k;
            }
            k += 1;
        }
    } else {
        let x = lambda + lambda.sqrt() * sample_normal(rng);
        x.round().max(0.0) as u64
    }
}

/// A sample from `{0, 1, …, n-1}` with probability ∝ `1/(i+1)^s`
/// (Zipf by inverse-CDF over precomputed weights would be faster, but the
/// simulator only uses this for query-name popularity where n is small).
pub fn sample_zipf<R: Rng + ?Sized>(rng: &mut R, n: usize, s: f64) -> usize {
    debug_assert!(n > 0);
    // Rejection-free: walk the CDF. n is small (name catalogue), so O(n)
    // is fine and avoids precomputing state.
    let norm: f64 = (1..=n).map(|i| 1.0 / (i as f64).powf(s)).sum();
    let mut u = rng.gen::<f64>() * norm;
    for i in 1..=n {
        let w = 1.0 / (i as f64).powf(s);
        if u < w {
            return i - 1;
        }
        u -= w;
    }
    n - 1
}

/// A uniform sample from a log-scaled range `[lo, hi]` — used for outage
/// durations, which span two orders of magnitude (5 minutes to hours).
pub fn sample_log_uniform<R: Rng + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
    debug_assert!(lo > 0.0 && hi >= lo);
    let (ll, lh) = (lo.ln(), hi.ln());
    (ll + rng.gen::<f64>() * (lh - ll)).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(0xC0FFEE)
    }

    #[test]
    fn splitmix_is_deterministic_and_spreads() {
        assert_eq!(splitmix64(1), splitmix64(1));
        assert_ne!(splitmix64(1), splitmix64(2));
        // low-bit inputs produce high-entropy outputs
        let a = splitmix64(0);
        let b = splitmix64(1);
        assert!((a ^ b).count_ones() > 10);
    }

    #[test]
    fn seed_for_depends_on_tag() {
        assert_eq!(seed_for(7, b"10.0.0.0/24"), seed_for(7, b"10.0.0.0/24"));
        assert_ne!(seed_for(7, b"10.0.0.0/24"), seed_for(7, b"10.0.1.0/24"));
        assert_ne!(seed_for(7, b"x"), seed_for(8, b"x"));
    }

    #[test]
    fn normal_moments() {
        let mut r = rng();
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| sample_normal(&mut r)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn lognormal_median() {
        let mut r = rng();
        let n = 20_000;
        let mut samples: Vec<f64> = (0..n)
            .map(|_| sample_lognormal(&mut r, -3.0, 1.0))
            .collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[n / 2];
        // median of lognormal is e^mu
        assert!((median.ln() + 3.0).abs() < 0.1, "median {median}");
        assert!(samples.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn exp_mean() {
        let mut r = rng();
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| sample_exp(&mut r, 4.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.25).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn poisson_small_lambda_mean() {
        let mut r = rng();
        let n = 20_000;
        let mean: f64 = (0..n)
            .map(|_| sample_poisson(&mut r, 3.5) as f64)
            .sum::<f64>()
            / n as f64;
        assert!((mean - 3.5).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn poisson_large_lambda_mean() {
        let mut r = rng();
        let n = 5_000;
        let mean: f64 = (0..n)
            .map(|_| sample_poisson(&mut r, 200.0) as f64)
            .sum::<f64>()
            / n as f64;
        assert!((mean - 200.0).abs() < 2.0, "mean {mean}");
    }

    #[test]
    fn poisson_zero_lambda() {
        let mut r = rng();
        assert_eq!(sample_poisson(&mut r, 0.0), 0);
        assert_eq!(sample_poisson(&mut r, -1.0), 0);
    }

    #[test]
    fn zipf_favors_head() {
        let mut r = rng();
        let mut counts = [0usize; 10];
        for _ in 0..20_000 {
            counts[sample_zipf(&mut r, 10, 1.0)] += 1;
        }
        assert!(counts[0] > counts[4], "head {counts:?}");
        assert!(counts[0] > counts[9] * 3, "tail {counts:?}");
        // all in range (implicitly: no index panic)
    }

    #[test]
    fn log_uniform_bounds() {
        let mut r = rng();
        for _ in 0..1_000 {
            let x = sample_log_uniform(&mut r, 300.0, 21_600.0);
            assert!((300.0..=21_600.0).contains(&x));
        }
    }
}
