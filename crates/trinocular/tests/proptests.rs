//! Property tests for the active prober: structural guarantees that must
//! hold for any world and any outage schedule.

use outage_netsim::{Internet, OutageSchedule, Scenario, TopologyConfig};
use outage_trinocular::{Trinocular, TrinocularConfig};
use outage_types::{Interval, Prefix};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn report_is_well_formed_for_any_world(seed in 0u64..500, n_blocks in 1usize..30) {
        let internet = Internet::generate(&TopologyConfig::default(), seed);
        let window = Interval::from_secs(0, 86_400);
        let schedule = OutageSchedule::generate(
            &internet,
            &outage_netsim::OutageConfig::default(),
            window,
            seed,
        );
        let mut oracle = outage_netsim::NetworkOracle::new(&internet, &schedule, seed);
        let blocks: Vec<Prefix> = internet
            .blocks()
            .iter()
            .take(n_blocks)
            .map(|b| b.prefix)
            .collect();
        let report = Trinocular::new(TrinocularConfig::default()).run(&mut oracle, &blocks);

        prop_assert_eq!(report.timelines.len(), blocks.len());
        for (block, tl) in &report.timelines {
            prop_assert!(blocks.contains(block));
            prop_assert_eq!(tl.window, window);
            for iv in tl.down.iter() {
                prop_assert!(iv.start >= window.start && iv.end <= window.end);
                prop_assert!(!iv.is_empty());
            }
        }
        // Probe budget: at least ~1/round/block, at most 16/round/block.
        let rounds = 86_400 / 660 + 1;
        prop_assert!(report.probes_sent >= (blocks.len() as u64) * (rounds - 2));
        prop_assert!(report.probes_sent <= (blocks.len() as u64) * rounds * 16);
    }

    #[test]
    fn long_injected_outage_is_always_found_on_responsive_blocks(
        seed in 0u64..200,
        start in 10_000u64..50_000,
        dur in 7_200u64..20_000,
    ) {
        let mut scenario = Scenario::quick(seed);
        let Some(victim) = scenario
            .internet
            .blocks()
            .iter()
            .find(|b| b.response_rate > 0.8)
            .map(|b| b.prefix)
        else {
            return Ok(()); // no responsive block at this seed; vacuous
        };
        let truth = Interval::from_secs(start, start + dur);
        let mut schedule = OutageSchedule::new(scenario.window());
        schedule.add(victim, truth);
        scenario.schedule = schedule;
        let mut oracle = scenario.oracle();
        let report = Trinocular::new(TrinocularConfig::default()).run(&mut oracle, &[victim]);
        let tl = report.timeline_for(&victim).unwrap();
        let caught = tl.down.overlap_secs(&outage_types::IntervalSet::singleton(truth));
        prop_assert!(
            caught as f64 > 0.7 * dur as f64,
            "caught only {caught} of {dur} s"
        );
    }
}
