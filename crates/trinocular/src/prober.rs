//! The probing driver: rounds, adaptive follow-ups, and reporting.

use crate::state::{BlockState, TrinocularConfig};
use outage_netsim::{NetworkOracle, ProbeOutcome};
use outage_types::{DetectorId, Interval, OutageEvent, Prefix, Timeline};
use std::collections::HashMap;

/// Result of a Trinocular run.
#[derive(Debug)]
pub struct TrinocularReport {
    /// The observation window.
    pub window: Interval,
    /// Judged timeline per probed block.
    pub timelines: HashMap<Prefix, Timeline>,
    /// Total probes sent (the active-traffic budget).
    pub probes_sent: u64,
}

impl TrinocularReport {
    /// Judged timeline for a block.
    pub fn timeline_for(&self, block: &Prefix) -> Option<&Timeline> {
        self.timelines.get(block)
    }

    /// All outage events.
    pub fn events(&self) -> Vec<OutageEvent> {
        let mut out: Vec<OutageEvent> = self
            .timelines
            .iter()
            .flat_map(|(p, t)| t.events(*p, DetectorId::Trinocular))
            .collect();
        out.sort_by_key(|e| (e.interval.start, e.prefix));
        out
    }

    /// Mean probes per block per round — the intrusiveness figure the
    /// paper contrasts passive detection against.
    pub fn probes_per_block_round(&self) -> f64 {
        if self.timelines.is_empty() {
            return 0.0;
        }
        let rounds = (self.window.duration() as f64 / 660.0).max(1.0);
        self.probes_sent as f64 / (self.timelines.len() as f64 * rounds)
    }
}

/// Trinocular-style active prober.
#[derive(Debug, Clone, Default)]
pub struct Trinocular {
    config: TrinocularConfig,
}

impl Trinocular {
    /// A prober with the given configuration.
    pub fn new(config: TrinocularConfig) -> Trinocular {
        Trinocular { config }
    }

    /// The configuration in force.
    pub fn config(&self) -> &TrinocularConfig {
        &self.config
    }

    /// Probe `blocks` over the oracle's window.
    ///
    /// Each block is probed once per round, at a per-block phase offset
    /// (staggered by a hash of the prefix, like production Trinocular
    /// spreads its probe load), with adaptive follow-ups while the belief
    /// is inconclusive. `A(E(b))` comes from the simulated world's
    /// profile, standing in for Trinocular's census-derived priors.
    pub fn run(&self, oracle: &mut NetworkOracle<'_>, blocks: &[Prefix]) -> TrinocularReport {
        let window = oracle.ground_truth().window();
        let cfg = &self.config;
        let mut timelines = HashMap::with_capacity(blocks.len());
        let mut probes_sent = 0u64;

        for &block in blocks {
            let Some(profile) = oracle.internet().block(&block) else {
                continue;
            };
            let mut state = BlockState::new(profile.response_rate, cfg);
            let phase = phase_of(&block, cfg.round_secs);
            let mut t = window.start + phase;
            while t < window.end {
                // First probe of the round.
                let mut sent = 1u32;
                let mut got_reply = oracle.probe(&block, t) == ProbeOutcome::Reply;
                state.update(got_reply, cfg);
                // Adaptive follow-ups, a few seconds apart. A timeout is
                // *inconsistent* with an up belief, so keep probing until
                // a reply confirms the block (killing the slow belief
                // ratchet a lossy block would otherwise suffer), the
                // belief concludes down on at least `min_probes_for_down`
                // probes, or the round's budget runs out.
                let mut tt = t;
                while sent < 1 + cfg.max_adaptive_probes
                    && !got_reply
                    && !(state.belief() < cfg.down_threshold && sent >= cfg.min_probes_for_down)
                {
                    tt = (tt + 3).min(window.end - 1);
                    let replied = oracle.probe(&block, tt) == ProbeOutcome::Reply;
                    got_reply |= replied;
                    state.update(replied, cfg);
                    sent += 1;
                }
                state.conclude(t, cfg);
                t += cfg.round_secs;
            }
            probes_sent += state.probes_sent();
            timelines.insert(block, state.finish(window));
        }

        TrinocularReport {
            window,
            timelines,
            probes_sent,
        }
    }
}

/// Deterministic per-block phase in `[0, round)`.
fn phase_of(block: &Prefix, round: u64) -> u64 {
    // FNV-1a over the display form: stable, cheap, good enough spread.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in block.to_string().bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h % round
}

#[cfg(test)]
mod tests {
    use super::*;
    use outage_netsim::{OutageSchedule, Scenario};

    /// A scenario plus a victim block with one long ground-truth outage.
    fn setup() -> (Scenario, Prefix, Interval) {
        let mut scenario = Scenario::quick(31);
        // pick a responsive block and inject a known 2 h outage
        let victim = scenario
            .internet
            .blocks()
            .iter()
            .find(|b| b.response_rate > 0.8)
            .expect("some responsive block")
            .prefix;
        let outage = Interval::from_secs(30_000, 37_200);
        let window = scenario.window();
        let mut schedule = OutageSchedule::new(window);
        schedule.add(victim, outage);
        scenario.schedule = schedule;
        (scenario, victim, outage)
    }

    #[test]
    fn detects_long_outage_within_round_precision() {
        let (scenario, victim, truth) = setup();
        let mut oracle = scenario.oracle();
        let blocks: Vec<Prefix> = scenario
            .internet
            .blocks()
            .iter()
            .map(|b| b.prefix)
            .collect();
        let report = Trinocular::new(TrinocularConfig::default()).run(&mut oracle, &blocks);

        let tl = report.timeline_for(&victim).expect("probed");
        assert_eq!(tl.down.len(), 1, "{:?}", tl.down);
        let iv = tl.down.intervals()[0];
        // Edges are quantized to probe times: within one round of truth.
        assert!(
            iv.start.since(truth.start) <= 660 && truth.start.since(iv.start) <= 660,
            "start {} vs truth {}",
            iv.start,
            truth.start
        );
        assert!(
            iv.end.since(truth.end) <= 660 && truth.end.since(iv.end) <= 660,
            "end {} vs truth {}",
            iv.end,
            truth.end
        );
    }

    #[test]
    fn healthy_responsive_blocks_show_no_outage() {
        let (scenario, victim, _) = setup();
        let mut oracle = scenario.oracle();
        let healthy: Vec<Prefix> = scenario
            .internet
            .blocks()
            .iter()
            .filter(|b| b.prefix != victim && b.response_rate > 0.9)
            .map(|b| b.prefix)
            .take(10)
            .collect();
        let report = Trinocular::new(TrinocularConfig::default()).run(&mut oracle, &healthy);
        for b in &healthy {
            let tl = report.timeline_for(b).unwrap();
            assert_eq!(tl.down_secs(), 0, "false outage on {b}: {:?}", tl.down);
        }
    }

    #[test]
    fn outage_onset_costs_an_adaptive_burst() {
        // Probing the victim (which has a 2 h outage) must cost more
        // probes than probing the same block in a world without the
        // outage: the onset and recovery force adaptive sequences.
        let (scenario, victim, _) = setup();
        let tri = Trinocular::new(TrinocularConfig::default());
        let mut oracle = scenario.oracle();
        let with_outage = tri.run(&mut oracle, &[victim]).probes_sent;

        let mut calm = Scenario::quick(31);
        calm.schedule = OutageSchedule::new(calm.window());
        let mut oracle = calm.oracle();
        let without = tri.run(&mut oracle, &[victim]).probes_sent;
        assert!(
            with_outage > without,
            "outage run {with_outage} !> calm run {without}"
        );
    }

    #[test]
    fn probe_budget_is_at_least_one_per_round() {
        let (scenario, _, _) = setup();
        let blocks: Vec<Prefix> = scenario
            .internet
            .blocks()
            .iter()
            .map(|b| b.prefix)
            .take(20)
            .collect();
        let mut oracle = scenario.oracle();
        let report = Trinocular::new(TrinocularConfig::default()).run(&mut oracle, &blocks);
        let ppbr = report.probes_per_block_round();
        assert!(ppbr >= 0.9, "probes/block/round {ppbr}");
        assert!(ppbr <= 16.0, "probes/block/round {ppbr}");
    }

    #[test]
    fn unknown_blocks_are_skipped() {
        let (scenario, _, _) = setup();
        let mut oracle = scenario.oracle();
        let ghost: Prefix = "203.0.113.0/24".parse().unwrap();
        let report = Trinocular::new(TrinocularConfig::default()).run(&mut oracle, &[ghost]);
        assert!(report.timelines.is_empty());
        assert_eq!(report.probes_sent, 0);
    }

    #[test]
    fn events_are_sorted_and_attributed() {
        let (scenario, victim, _) = setup();
        let mut oracle = scenario.oracle();
        let report = Trinocular::new(TrinocularConfig::default()).run(&mut oracle, &[victim]);
        let events = report.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].detector, DetectorId::Trinocular);
        assert_eq!(events[0].prefix, victim);
    }

    #[test]
    fn phases_spread_blocks_across_the_round() {
        let phases: Vec<u64> = (0..64u32)
            .map(|i| phase_of(&Prefix::v4_raw(i << 8, 24), 660))
            .collect();
        let distinct: std::collections::HashSet<_> = phases.iter().collect();
        assert!(distinct.len() > 32, "phases collide too much");
        assert!(phases.iter().all(|&p| p < 660));
    }
}
