//! Per-block Trinocular belief state.

use outage_types::{Interval, IntervalSet, Timeline, UnixTime};
use serde::{Deserialize, Serialize};

/// Trinocular operating parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrinocularConfig {
    /// Probing round length in seconds (11 minutes in the paper).
    pub round_secs: u64,
    /// Maximum probes per round when the belief is inconclusive.
    pub max_adaptive_probes: u32,
    /// Belief below which a block is judged down.
    pub down_threshold: f64,
    /// Belief above which a block is judged up.
    pub up_threshold: f64,
    /// Belief clamp floor.
    pub belief_floor: f64,
    /// Belief clamp ceiling.
    pub belief_ceiling: f64,
    /// Probability a reply arrives from a *down* block (measurement
    /// noise / spoofing); keeps the reply likelihood ratio finite.
    pub reply_when_down: f64,
    /// Minimum probes in a round before a *down* conclusion is allowed.
    /// Guards against a burst of background loss masquerading as an
    /// outage: a down verdict must rest on several unanswered probes,
    /// not two unlucky ones.
    pub min_probes_for_down: u32,
}

impl Default for TrinocularConfig {
    fn default() -> Self {
        TrinocularConfig {
            round_secs: 660,
            max_adaptive_probes: 15,
            down_threshold: 0.1,
            up_threshold: 0.9,
            belief_floor: 0.01,
            // The ceiling sets how much contrary evidence a down verdict
            // needs (log-odds distance ceiling→down_threshold). 0.997
            // puts the sequential test's false-alarm odds near e^-8 per
            // round while still concluding within the 16-probe budget
            // for A(E(b)) ≥ 0.4.
            belief_ceiling: 0.997,
            reply_when_down: 1e-4,
            min_probes_for_down: 5,
        }
    }
}

/// Judged state of a block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Judgement {
    /// Believed reachable.
    Up,
    /// Believed unreachable.
    Down,
}

/// Belief machine for one /24 under active probing.
#[derive(Debug, Clone)]
pub struct BlockState {
    /// `A(E(b))`: long-term responsiveness of the block's probed
    /// addresses.
    a: f64,
    belief: f64,
    judgement: Judgement,
    /// Down intervals accumulated so far (closed on recovery).
    down: IntervalSet,
    /// When the current down period started, if down.
    down_since: Option<UnixTime>,
    probes_sent: u64,
}

impl BlockState {
    /// Fresh state for a block with responsiveness `a`, assumed up with
    /// full confidence (Trinocular state is long-running; a block enters
    /// the window believed up at the ceiling, so a down verdict on day
    /// one needs just as much evidence as on day one hundred).
    pub fn new(a: f64, cfg: &TrinocularConfig) -> BlockState {
        BlockState {
            a: a.clamp(0.05, 0.999),
            belief: cfg.belief_ceiling,
            judgement: Judgement::Up,
            down: IntervalSet::new(),
            down_since: None,
            probes_sent: 0,
        }
    }

    /// Current belief that the block is up.
    pub fn belief(&self) -> f64 {
        self.belief
    }

    /// Current judgement.
    pub fn judgement(&self) -> Judgement {
        self.judgement
    }

    /// Probes consumed by this block so far.
    pub fn probes_sent(&self) -> u64 {
        self.probes_sent
    }

    /// Whether another adaptive probe is warranted: the belief is
    /// inconclusive given the thresholds.
    pub fn inconclusive(&self, cfg: &TrinocularConfig) -> bool {
        self.belief > cfg.down_threshold && self.belief < cfg.up_threshold
    }

    /// Bayes-update the belief on one probe outcome. Judgement changes
    /// only at [`BlockState::conclude`], once the round's probe sequence
    /// is complete.
    pub fn update(&mut self, replied: bool, cfg: &TrinocularConfig) {
        self.probes_sent += 1;
        let (p_up, p_down) = if replied {
            (self.a, cfg.reply_when_down)
        } else {
            (1.0 - self.a, 1.0 - cfg.reply_when_down)
        };
        let odds = (self.belief / (1.0 - self.belief)) * (p_up / p_down);
        self.belief = (odds / (1.0 + odds)).clamp(cfg.belief_floor, cfg.belief_ceiling);
    }

    /// Conclude a probing round at time `t`: apply hysteresis and record
    /// any state transition.
    ///
    /// A transition concluded at round `t` actually happened somewhere in
    /// `(t − round, t]`; the recorded edge is the midpoint `t − round/2`,
    /// centring the quantization error at the famous **±round/2**
    /// (±330 s) rather than biasing every edge late by up to a round.
    pub fn conclude(&mut self, t: UnixTime, cfg: &TrinocularConfig) {
        let t_est = t - cfg.round_secs / 2;
        match self.judgement {
            Judgement::Up if self.belief < cfg.down_threshold => {
                self.judgement = Judgement::Down;
                self.down_since = Some(t_est);
            }
            Judgement::Down if self.belief > cfg.up_threshold => {
                self.judgement = Judgement::Up;
                if let Some(start) = self.down_since.take() {
                    self.down.insert(Interval::new(start, t_est));
                }
            }
            _ => {}
        }
    }

    /// Close the state at the end of the window and produce the judged
    /// timeline.
    pub fn finish(mut self, window: Interval) -> Timeline {
        if let Some(start) = self.down_since.take() {
            self.down.insert(Interval::new(start, window.end));
        }
        Timeline::from_down(window, self.down)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> TrinocularConfig {
        TrinocularConfig::default()
    }

    #[test]
    fn default_config_sane() {
        let c = cfg();
        assert_eq!(c.round_secs, 660);
        assert!(c.down_threshold < c.up_threshold);
    }

    #[test]
    fn reply_confirms_up() {
        let mut s = BlockState::new(0.5, &cfg());
        s.update(true, &cfg());
        assert!(s.belief() > 0.9, "belief {}", s.belief());
        assert_eq!(s.judgement(), Judgement::Up);
    }

    #[test]
    fn timeouts_erode_belief_faster_for_responsive_blocks() {
        let mut responsive = BlockState::new(0.95, &cfg());
        let mut flaky = BlockState::new(0.3, &cfg());
        responsive.update(false, &cfg());
        flaky.update(false, &cfg());
        assert!(
            responsive.belief() < flaky.belief(),
            "a timeout from a responsive block is stronger evidence"
        );
    }

    #[test]
    fn transition_down_and_back_produces_interval() {
        let c = cfg();
        let mut s = BlockState::new(0.9, &cfg());
        // Rounds of all-timeouts until judged down.
        let mut t = 0;
        while s.judgement() == Judgement::Up {
            for _ in 0..5 {
                s.update(false, &c);
            }
            s.conclude(UnixTime(t), &c);
            t += 660;
            assert!(t < 20 * 660, "never went down");
        }
        let down_at = t - 660;
        // Rounds of replies bring it back.
        while s.judgement() == Judgement::Down {
            s.update(true, &c);
            s.conclude(UnixTime(t), &c);
            t += 660;
        }
        let up_at = t - 660;
        let tl = s.finish(Interval::from_secs(0, 86_400));
        assert_eq!(tl.down.len(), 1);
        let iv = tl.down.intervals()[0];
        // edges are centred: concluded time minus half a round
        assert_eq!(iv.start, UnixTime(down_at) - 330);
        assert_eq!(iv.end, UnixTime(up_at) - 330);
    }

    #[test]
    fn unclosed_outage_censored_at_window_end() {
        let c = cfg();
        let mut s = BlockState::new(0.9, &cfg());
        for i in 0..5 {
            for _ in 0..5 {
                s.update(false, &c);
            }
            s.conclude(UnixTime(i * 660), &c);
        }
        assert_eq!(s.judgement(), Judgement::Down);
        let tl = s.finish(Interval::from_secs(0, 10_000));
        assert_eq!(tl.down.intervals().last().unwrap().end, UnixTime(10_000));
    }

    #[test]
    fn inconclusive_drives_adaptive_probing() {
        let c = cfg();
        // Mid-responsiveness block starting at the ceiling: a few
        // timeouts land the belief in the uncertain band (where the
        // prober keeps probing), and enough of them conclude down.
        let mut s = BlockState::new(0.5, &cfg());
        for _ in 0..6 {
            s.update(false, &c);
        }
        assert!(s.inconclusive(&c), "belief {}", s.belief());
        for _ in 0..10 {
            s.update(false, &c);
        }
        assert!(!s.inconclusive(&c));
        s.conclude(UnixTime(0), &c);
        assert_eq!(s.judgement(), Judgement::Down);
    }

    #[test]
    fn belief_stays_clamped() {
        let c = cfg();
        let mut s = BlockState::new(0.99, &cfg());
        for _ in 0..100 {
            s.update(true, &c);
        }
        assert!(s.belief() <= c.belief_ceiling + 1e-12);
        for _ in 0..100 {
            s.update(false, &c);
        }
        assert!(s.belief() >= c.belief_floor - 1e-12);
    }

    #[test]
    fn extreme_a_values_are_clamped() {
        // a=1.0 would make a timeout infinitely strong; must be clamped.
        let mut s = BlockState::new(1.0, &cfg());
        s.update(false, &cfg());
        assert!(s.belief() > 0.0);
        let s2 = BlockState::new(0.0, &cfg());
        assert!(s2.a >= 0.05);
    }

    #[test]
    fn probe_counter_counts() {
        let c = cfg();
        let mut s = BlockState::new(0.9, &cfg());
        for i in 0..7 {
            s.update(i % 2 == 0, &c);
        }
        assert_eq!(s.probes_sent(), 7);
    }

    #[test]
    fn conclusion_happens_only_at_round_end() {
        let c = cfg();
        let mut s = BlockState::new(0.9, &cfg());
        // Belief collapses mid-round, but judgement waits for conclude.
        for _ in 0..5 {
            s.update(false, &c);
        }
        assert!(s.belief() < c.down_threshold);
        assert_eq!(s.judgement(), Judgement::Up);
        s.conclude(UnixTime(42), &c);
        assert_eq!(s.judgement(), Judgement::Down);
    }
}
