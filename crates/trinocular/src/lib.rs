//! # outage-trinocular
//!
//! A from-scratch reimplementation of **Trinocular**-style active outage
//! detection (Quan, Heidemann & Pradkin, SIGCOMM 2013), used by the paper
//! as the comparison truth for long outages (Tables 1–2).
//!
//! Semantics reproduced:
//!
//! * Per-/24 Bayesian belief `B(up)`, clamped to `[0.01, 0.99]`.
//! * One probe per block per **11-minute round** (phase-staggered across
//!   blocks to spread load).
//! * Probes answered with probability `A(E(b))` while the block is up —
//!   the block's long-term address responsiveness, which production
//!   Trinocular learns from census history and we take from the
//!   simulator's per-block profile (the same role: prior knowledge).
//! * **Adaptive probing**: while the belief is inconclusive after a probe,
//!   up to 15 follow-up probes are sent in quick succession.
//! * State transitions recorded at probe timestamps, so reported edges
//!   carry the famous **±330 s** quantization — half a round — that the
//!   passive detector's exact timestamps beat.
//!
//! The prober only interacts with the world through
//! [`outage_netsim::NetworkOracle::probe`]: it never sees ground truth.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod prober;
pub mod state;

pub use prober::{Trinocular, TrinocularReport};
pub use state::{BlockState, TrinocularConfig};
