//! Cross-crate integration: the baselines against ground truth and
//! against each other, reproducing the paper's comparison structure.

use passive_outage::chocolatine::Chocolatine;
use passive_outage::detector::fuse_timelines;
use passive_outage::netsim::{OutageConfig, OutageSchedule, ScenarioConfig, TopologyConfig};
use passive_outage::prelude::*;
use passive_outage::ripe::{place_probes, RipeAtlas};
use passive_outage::trinocular::{Trinocular, TrinocularConfig};

#[test]
fn trinocular_tracks_ground_truth_on_responsive_blocks() {
    let scenario = Scenario::table1(40, 7);
    let blocks: Vec<Prefix> = scenario
        .internet
        .blocks()
        .iter()
        .filter(|b| b.prefix.family() == AddrFamily::V4 && b.response_rate > 0.6)
        .map(|b| b.prefix)
        .collect();
    let mut oracle = scenario.oracle();
    let report = Trinocular::new(TrinocularConfig::default()).run(&mut oracle, &blocks);

    let mut matrix = DurationMatrix::default();
    for b in &blocks {
        let truth = scenario.schedule.truth(b);
        matrix += DurationMatrix::of(report.timeline_for(b).unwrap(), &truth);
    }
    assert!(matrix.precision() > 0.99, "{matrix}");
    assert!(matrix.recall() > 0.99, "{matrix}");
    assert!(matrix.tnr() > 0.7, "{matrix}");
}

#[test]
fn atlas_mesh_tracks_ground_truth() {
    let scenario = Scenario::table3(40, 11);
    let probes = place_probes(&scenario.internet, 100, 11);
    let report = RipeAtlas::default().run(&scenario.schedule, &probes, 11);
    assert!(report.covered_blocks() > 50);

    let mut matrix = DurationMatrix::default();
    for (block, tl) in &report.timelines {
        matrix += DurationMatrix::of(tl, &scenario.schedule.truth(block));
    }
    assert!(matrix.precision() > 0.995, "{matrix}");
    assert!(matrix.recall() > 0.99, "{matrix}");
    // The mesh's 240 s cadence clips edges; most outage time is caught.
    assert!(matrix.tnr() > 0.6, "{matrix}");
}

#[test]
fn passive_beats_trinocular_on_edge_precision() {
    // One injected outage on a dense block; compare each system's edge
    // error against truth. The passive detector's exact timestamps
    // should locate the edges more tightly than Trinocular's rounds —
    // the paper's core precision claim.
    let mut scenario = Scenario::quick(2024);
    let victim = scenario
        .internet
        .blocks()
        .iter()
        .filter(|b| b.response_rate > 0.7)
        .max_by(|a, b| a.base_rate.total_cmp(&b.base_rate))
        .unwrap()
        .prefix;
    let truth = Interval::from_secs(30_000, 37_200);
    let mut schedule = OutageSchedule::new(scenario.window());
    schedule.add(victim, truth);
    scenario.schedule = schedule;

    let observations = scenario.collect_observations();
    let passive =
        PassiveDetector::new(DetectorConfig::default()).run_slice(&observations, scenario.window());
    let passive_iv = *passive
        .timeline_for(&victim)
        .unwrap()
        .down
        .iter()
        .find(|iv| iv.overlaps(&truth))
        .expect("passive missed the outage");

    let mut oracle = scenario.oracle();
    let trino = Trinocular::new(TrinocularConfig::default()).run(&mut oracle, &[victim]);
    let trino_iv = *trino
        .timeline_for(&victim)
        .unwrap()
        .down
        .iter()
        .find(|iv| iv.overlaps(&truth))
        .expect("trinocular missed the outage");

    let edge_err = |iv: &Interval| {
        iv.start.secs().abs_diff(truth.start.secs()) + iv.end.secs().abs_diff(truth.end.secs())
    };
    assert!(
        edge_err(&passive_iv) < edge_err(&trino_iv),
        "passive edges {:?} should beat trinocular {:?}",
        passive_iv,
        trino_iv
    );
    // Trinocular's error is bounded by its round quantization.
    assert!(edge_err(&trino_iv) <= 2 * 660 + 60);
}

#[test]
fn chocolatine_sees_the_as_but_not_the_block() {
    // A single /24 of a large AS goes down. Per-block passive detection
    // pinpoints it; AS-level aggregation dilutes it below detectability.
    let config = ScenarioConfig {
        name: "as-dilution".into(),
        topology: TopologyConfig {
            num_as: 20,
            v4_blocks_per_as: 12.0,
            rate_mu: -3.2,
            ..TopologyConfig::default()
        },
        outages: OutageConfig {
            p_long_per_day: 0.0,
            p_short_per_day: 0.0,
            p_as_per_day: 0.0,
            ..OutageConfig::default()
        },
        window_secs: 2 * durations::DAY,
        seed: 404,
    };
    let mut scenario = Scenario::build(config);
    // victim: one block of the biggest AS
    // Pick an AS and a victim block that carries a *minor* share of its
    // AS's traffic (so the aggregate barely moves), yet is dense enough
    // for its own 5-minute unit.
    let (big_as, victim) = scenario
        .internet
        .ases()
        .iter()
        .find_map(|asp| {
            let total: f64 = scenario
                .internet
                .blocks_of_as(asp.id)
                .map(|b| b.base_rate)
                .sum();
            let victim = scenario
                .internet
                .blocks_of_as(asp.id)
                .find(|b| b.base_rate >= 0.02 && b.base_rate < 0.10 * total)?;
            Some((asp.id, victim.prefix))
        })
        .expect("a diluted dense block exists at this seed");
    let truth = Interval::from_secs(86_400 + 30_000, 86_400 + 40_000);
    let mut schedule = OutageSchedule::new(scenario.window());
    schedule.add(victim, truth);
    scenario.schedule = schedule;

    let observations = scenario.collect_observations();

    // Passive, per block: finds it.
    let detector = PassiveDetector::new(DetectorConfig::default());
    let report = detector.run_slice(&observations, scenario.window());
    let tl = report.timeline_for(&victim).expect("covered");
    assert!(
        tl.down.iter().any(|iv| iv.overlaps(&truth)),
        "per-block detection must find the single-block outage"
    );

    // Chocolatine, per AS: one block of many barely dents the aggregate.
    let internet = &scenario.internet;
    let choco = Chocolatine::default().run(observations.iter().copied(), scenario.window(), |p| {
        internet.as_of(p).map(|a| a.0)
    });
    let as_tl = choco.timeline_for(big_as.0);
    let as_down = as_tl.map(|t| t.down_secs()).unwrap_or(0);
    assert!(
        as_down < truth.duration() / 2,
        "AS-level aggregate should dilute a single-block outage (saw {as_down} s)"
    );
}

#[test]
fn corroboration_by_quorum_cuts_false_outages() {
    // Fuse passive and Trinocular views: an outage both systems agree on
    // is kept, disagreements are dropped — precision can only improve.
    let scenario = Scenario::table1(30, 77);
    let observations = scenario.collect_observations();
    let detector = PassiveDetector::new(DetectorConfig::default());
    let passive = detector.run_slice(&observations, scenario.window());

    let covered: Vec<Prefix> = scenario
        .internet
        .blocks_of(AddrFamily::V4)
        .map(|b| b.prefix)
        .filter(|p| passive.timeline_for(p).is_some())
        .collect();
    let mut oracle = scenario.oracle();
    let trino = Trinocular::new(TrinocularConfig::default()).run(&mut oracle, &covered);

    let mut solo = DurationMatrix::default();
    let mut fused_m = DurationMatrix::default();
    for b in &covered {
        let truth = scenario.schedule.truth(b);
        let p_tl = passive.timeline_for(b).unwrap();
        let t_tl = trino.timeline_for(b).unwrap();
        let fused = fuse_timelines(&[p_tl.clone(), t_tl.clone()], 2);
        solo += DurationMatrix::of(p_tl, &truth);
        fused_m += DurationMatrix::of(&fused, &truth);
    }
    // Quorum-2 keeps only corroborated outage time: false-outage seconds
    // cannot increase.
    assert!(
        fused_m.fo <= solo.fo,
        "fused fo {} > solo fo {}",
        fused_m.fo,
        solo.fo
    );
    assert!(fused_m.recall() >= solo.recall() - 1e-9);
}

#[test]
fn all_detectors_agree_on_a_big_obvious_outage() {
    // A long outage on a dense, responsive, probe-hosting block: every
    // system in the workspace must see it.
    let mut scenario = Scenario::quick(31415);
    let victim = scenario
        .internet
        .blocks()
        .iter()
        .filter(|b| b.response_rate > 0.8 && b.prefix.family() == AddrFamily::V4)
        .max_by(|a, b| a.base_rate.total_cmp(&b.base_rate))
        .unwrap()
        .prefix;
    let truth = Interval::from_secs(30_000, 50_000);
    let mut schedule = OutageSchedule::new(scenario.window());
    schedule.add(victim, truth);
    scenario.schedule = schedule;

    let observations = scenario.collect_observations();

    let passive =
        PassiveDetector::new(DetectorConfig::default()).run_slice(&observations, scenario.window());
    assert!(passive.timeline_for(&victim).unwrap().down_secs() > 18_000);

    let mut oracle = scenario.oracle();
    let trino = Trinocular::new(TrinocularConfig::default()).run(&mut oracle, &[victim]);
    assert!(trino.timeline_for(&victim).unwrap().down_secs() > 18_000);

    let probes = vec![passive_outage::ripe::AtlasProbe {
        id: 1,
        block: victim,
        phase: 60,
    }];
    let atlas = RipeAtlas::default().run(&scenario.schedule, &probes, 1);
    assert!(atlas.timeline_for(&victim).unwrap().down_secs() > 18_000);
}
