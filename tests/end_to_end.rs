//! Cross-crate integration: the full pipeline against ground truth.

use passive_outage::detector::detect_parallel;
use passive_outage::dnswire::Telescope;
use passive_outage::netsim::{OutageSchedule, PacketFeed};
use passive_outage::prelude::*;

/// A quick scenario with the random schedule it was generated with.
fn scenario() -> Scenario {
    Scenario::quick(1001)
}

#[test]
fn pipeline_against_ground_truth_is_accurate() {
    let scenario = scenario();
    let observations = scenario.collect_observations();
    let detector = PassiveDetector::new(DetectorConfig::default());
    let report = detector.run_slice(&observations, scenario.window());

    // Sum the duration confusion matrix over every covered block,
    // against the simulator's own truth (the strongest possible
    // reference).
    let mut matrix = DurationMatrix::default();
    for (i, unit) in report.units.iter().enumerate() {
        for block in &report.members[i] {
            let truth = scenario.schedule.truth(block);
            matrix += DurationMatrix::of(&unit.timeline, &truth);
        }
    }
    assert!(matrix.total() > 0);
    assert!(
        matrix.precision() > 0.995,
        "precision {} too low\n{matrix}",
        matrix.precision()
    );
    assert!(
        matrix.recall() > 0.99,
        "recall {} too low\n{matrix}",
        matrix.recall()
    );
    // Some outage time is caught (TNR varies with block density mix).
    assert!(matrix.tnr() > 0.3, "TNR {}\n{matrix}", matrix.tnr());
}

#[test]
fn detection_is_deterministic() {
    let scenario = scenario();
    let observations = scenario.collect_observations();
    let detector = PassiveDetector::new(DetectorConfig::default());
    let a = detector.run_slice(&observations, scenario.window());
    let b = detector.run_slice(&observations, scenario.window());
    assert_eq!(a.covered_blocks(), b.covered_blocks());
    for (i, unit) in a.units.iter().enumerate() {
        assert_eq!(unit.timeline, b.units[i].timeline);
        assert_eq!(unit.diagnostics, b.units[i].diagnostics);
    }
}

#[test]
fn parallel_driver_matches_sequential_at_scenario_scale() {
    let scenario = scenario();
    let observations = scenario.collect_observations();
    let detector = PassiveDetector::new(DetectorConfig::default());
    let histories = detector.learn_histories(observations.iter().copied(), scenario.window());
    let seq = detector.detect(&histories, observations.iter().copied(), scenario.window());
    let par = detect_parallel(
        &detector,
        &histories,
        observations.iter().copied(),
        scenario.window(),
        4,
    );
    assert_eq!(seq.covered_blocks(), par.covered_blocks());
    assert_eq!(seq.strays, par.strays);
    for b in scenario.internet.blocks() {
        assert_eq!(
            seq.timeline_for(&b.prefix),
            par.timeline_for(&b.prefix),
            "divergence on {}",
            b.prefix
        );
    }
}

#[test]
fn wire_path_equals_observation_path() {
    // Detecting from parsed packets must give identical verdicts to
    // detecting from the raw observation stream.
    let scenario = scenario();
    let observations = scenario.collect_observations();

    let mut feed = PacketFeed::new(9);
    let packets: Vec<_> = observations.iter().map(|o| feed.render(o)).collect();
    let mut telescope = Telescope::new();
    let parsed: Vec<Observation> = telescope.observe_all(packets).collect();
    assert_eq!(
        parsed.len(),
        observations.len(),
        "telescope dropped valid queries"
    );
    assert_eq!(parsed, observations, "attribution must be lossless");

    let detector = PassiveDetector::new(DetectorConfig::default());
    let via_wire = detector.run_slice(&parsed, scenario.window());
    let direct = detector.run_slice(&observations, scenario.window());
    assert_eq!(via_wire.covered_blocks(), direct.covered_blocks());
    for b in scenario.internet.blocks() {
        assert_eq!(
            via_wire.timeline_for(&b.prefix),
            direct.timeline_for(&b.prefix)
        );
    }
}

#[test]
fn injected_long_outage_recovered_with_tight_edges() {
    let mut scenario = Scenario::quick(555);
    let victim = scenario
        .internet
        .blocks()
        .iter()
        .max_by(|a, b| a.base_rate.total_cmp(&b.base_rate))
        .unwrap()
        .prefix;
    let truth = Interval::from_secs(40_000, 47_200);
    let mut schedule = OutageSchedule::new(scenario.window());
    schedule.add(victim, truth);
    scenario.schedule = schedule;

    let observations = scenario.collect_observations();
    let detector = PassiveDetector::new(DetectorConfig::default());
    let report = detector.run_slice(&observations, scenario.window());
    let tl = report.timeline_for(&victim).expect("covered");
    let hit = tl
        .down
        .iter()
        .find(|iv| iv.overlaps(&truth))
        .expect("outage found");
    // The busiest block has sub-minute inter-arrivals: edges should be
    // within ~2 minutes of truth.
    assert!(
        hit.start.secs().abs_diff(truth.start.secs()) < 120,
        "start {}",
        hit.start
    );
    assert!(
        hit.end.secs().abs_diff(truth.end.secs()) < 120,
        "end {}",
        hit.end
    );
}

#[test]
fn report_events_match_timelines() {
    let scenario = scenario();
    let observations = scenario.collect_observations();
    let detector = PassiveDetector::new(DetectorConfig::default());
    let report = detector.run_slice(&observations, scenario.window());
    let events = report.events();
    let total_event_secs: u64 = events.iter().map(|e| e.duration()).sum();
    let total_timeline_secs: u64 = report.units.iter().map(|u| u.timeline.down_secs()).sum();
    assert_eq!(total_event_secs, total_timeline_secs);
    for e in &events {
        assert!(e.interval.start >= scenario.window().start);
        assert!(e.interval.end <= scenario.window().end);
        assert_eq!(e.detector, passive_outage::types::DetectorId::PassiveBayes);
    }
}

#[test]
fn two_day_run_history_from_day_one() {
    // Operating mode closest to production: learn on day 1, judge day 2.
    let config = passive_outage::netsim::ScenarioConfig {
        name: "two-day".into(),
        topology: passive_outage::netsim::TopologyConfig::default(),
        outages: passive_outage::netsim::OutageConfig::default(),
        window_secs: 2 * durations::DAY,
        seed: 31337,
    };
    let scenario = Scenario::build(config);
    let observations = scenario.collect_observations();
    let day1 = Interval::from_secs(0, durations::DAY);
    let day2 = Interval::from_secs(durations::DAY, 2 * durations::DAY);

    let detector = PassiveDetector::new(DetectorConfig::default());
    let histories = detector.learn_histories(
        observations
            .iter()
            .copied()
            .filter(|o| day1.contains(o.time)),
        day1,
    );
    let report = detector.detect(
        &histories,
        observations
            .iter()
            .copied()
            .filter(|o| day2.contains(o.time)),
        day2,
    );

    let mut matrix = DurationMatrix::default();
    for (i, unit) in report.units.iter().enumerate() {
        for block in &report.members[i] {
            // Clip truth to day 2.
            let truth = scenario.schedule.truth(block);
            let truth_day2 = Timeline::from_down(day2, truth.down.clip(day2));
            matrix += DurationMatrix::of(&unit.timeline, &truth_day2);
        }
    }
    assert!(matrix.precision() > 0.99, "{matrix}");
    assert!(matrix.recall() > 0.98, "{matrix}");
}
