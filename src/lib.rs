//! # passive-outage
//!
//! Umbrella crate for the passive Internet outage detection workspace — a
//! reproduction of *"Internet Outage Detection using Passive Analysis"*
//! (Enayet & Heidemann, IMC 2022).
//!
//! Re-exports the whole public API under stable module names:
//!
//! * [`types`] — prefixes, timelines, interval algebra
//! * [`obs`] — metrics registry, Prometheus text codec, span tracer
//! * [`dnswire`] — DNS codec + the passive telescope
//! * [`netsim`] — the simulated Internet (topology, traffic, truth)
//! * [`detector`] — the paper's passive Bayesian detector
//! * [`store`] — versioned on-disk model checkpoints and warm start
//! * [`trinocular`] — active-probing baseline
//! * [`chocolatine`] — AS-level passive baseline
//! * [`ripe`] — Atlas-style ground-truth probe mesh
//! * [`eval`] — confusion matrices and event matching
//!
//! See `examples/` for runnable end-to-end scenarios and
//! `crates/bench/src/bin/repro.rs` for the paper's tables and figures.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use outage_chocolatine as chocolatine;
pub use outage_core as detector;
pub use outage_dnswire as dnswire;
pub use outage_eval as eval;
pub use outage_netsim as netsim;
pub use outage_obs as obs;
pub use outage_ripe as ripe;
pub use outage_store as store;
pub use outage_trinocular as trinocular;
pub use outage_types as types;

/// Convenience prelude: the names almost every user needs.
pub mod prelude {
    pub use outage_core::{DetectionReport, DetectorConfig, LearnedModel, PassiveDetector};
    pub use outage_eval::{DurationMatrix, EventMatrix};
    pub use outage_netsim::{Scenario, ScenarioConfig};
    pub use outage_store::ModelPersistence;
    pub use outage_types::{
        durations, AddrFamily, Interval, IntervalSet, Observation, OutageEvent, Prefix, Timeline,
        UnixTime,
    };
}
