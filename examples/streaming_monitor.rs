//! Live operation: the streaming monitor with rolling recalibration.
//!
//! The batch pipeline replays a finished day; a deployment runs forever.
//! This example simulates three days of traffic flowing through the
//! [`StreamingMonitor`]: day 1 warms the models up, day 2 runs live and
//! recalibrates at midnight, day 3 carries an injected outage that is
//! caught *while it happens* (watch the belief collapse mid-stream).
//!
//! ```text
//! cargo run --release --example streaming_monitor
//! ```

use passive_outage::detector::StreamingMonitor;
use passive_outage::netsim::{
    OutageConfig, OutageSchedule, Scenario, ScenarioConfig, TopologyConfig,
};
use passive_outage::prelude::*;

fn main() {
    // Three simulated days.
    let config = ScenarioConfig {
        name: "streaming".into(),
        topology: TopologyConfig::default(),
        outages: OutageConfig::default(),
        window_secs: 3 * durations::DAY,
        seed: 77,
    };
    let mut scenario = Scenario::build(config);

    // Inject a 90-minute outage on day 3 into the busiest block.
    let victim = scenario
        .internet
        .blocks()
        .iter()
        .max_by(|a, b| a.base_rate.total_cmp(&b.base_rate))
        .expect("blocks exist")
        .prefix;
    let outage = Interval::from_secs(2 * durations::DAY + 36_000, 2 * durations::DAY + 41_400);
    let mut schedule = OutageSchedule::new(scenario.window());
    schedule.add(victim, outage);
    scenario.schedule = schedule;
    println!(
        "watching {victim}; ground truth outage at {} → {}\n",
        outage.start, outage.end
    );

    let mut monitor = StreamingMonitor::daily(DetectorConfig::default(), UnixTime::EPOCH)
        .expect("valid default config");

    // Stream observations in arrival order, ticking the wall clock every
    // simulated minute and sampling the victim's belief around the
    // outage.
    let mut next_tick = 60u64;
    let mut printed = std::collections::BTreeSet::new();
    for obs in scenario.observations() {
        while obs.time.secs() >= next_tick {
            monitor.tick(UnixTime(next_tick));
            // Sample the belief at interesting moments.
            let t = next_tick;
            for (label, at) in [
                ("day 2 begins (live)", durations::DAY + 60),
                ("mid day 2 (healthy)", durations::DAY + 43_200),
                ("just before outage", 2 * durations::DAY + 35_940),
                ("10 min into outage", 2 * durations::DAY + 36_600),
                ("30 min into outage", 2 * durations::DAY + 37_800),
                ("after recovery", 2 * durations::DAY + 43_200),
            ] {
                if t >= at && printed.insert(label) {
                    match monitor.belief(&victim) {
                        Some(b) => {
                            println!("t={} {:<22} belief(up) = {:.3}", UnixTime(t), label, b)
                        }
                        None => println!("t={} {:<22} (warming up)", UnixTime(t), label),
                    }
                }
            }
            next_tick += 60;
        }
        monitor.observe(obs);
    }

    println!("\ncompleted events:");
    let events = monitor.finish(UnixTime(3 * durations::DAY));
    let mut shown = 0;
    for ev in events.iter().filter(|e| e.prefix == victim) {
        println!("  {ev}");
        shown += 1;
    }
    assert!(shown >= 1, "the injected outage must be reported");
    println!("\nstreaming_monitor OK: detected live, recalibrated daily.");
}
