//! Quickstart: detect an outage from nothing but passive traffic.
//!
//! Builds a small simulated Internet, injects one ground-truth outage,
//! feeds the resulting passive observation stream (what a root server
//! would see) to the detector, and prints what it found.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use passive_outage::netsim::OutageSchedule;
use passive_outage::prelude::*;

fn main() {
    // A deterministic small world: ~40 ASes, one simulated day.
    let mut scenario = Scenario::quick(7);

    // Replace the random outage schedule with one known outage: the
    // busiest block goes dark for 47 minutes in the afternoon.
    let victim = scenario
        .internet
        .blocks()
        .iter()
        .max_by(|a, b| a.base_rate.total_cmp(&b.base_rate))
        .expect("world has blocks")
        .prefix;
    let truth = Interval::from_secs(52_000, 54_820);
    let mut schedule = OutageSchedule::new(scenario.window());
    schedule.add(victim, truth);
    scenario.schedule = schedule;

    println!(
        "world: {} blocks across {} ASes",
        scenario.internet.blocks().len(),
        scenario.internet.ases().len()
    );
    println!(
        "injected ground truth: {victim} down {truth} ({} s)\n",
        truth.duration()
    );

    // The passive feed: timestamped (arrival, source block) pairs.
    let observations: Vec<Observation> = scenario.collect_observations();
    println!(
        "passive feed: {} observations over one day",
        observations.len()
    );

    // Run the detector: history pass, per-block tuning, detection pass.
    let detector = PassiveDetector::new(DetectorConfig::default());
    let report = detector.run_slice(&observations, scenario.window());

    println!(
        "coverage: {} blocks judged ({} unmeasurable, {} stray observations)\n",
        report.covered_blocks(),
        report.uncovered.len(),
        report.strays
    );

    // What did we find?
    let mut events = report.events();
    events.sort_by_key(|e| e.interval.start);
    println!("detected outages:");
    for ev in &events {
        println!("  {ev}");
    }

    // Compare the victim's verdict with the truth, in seconds.
    let verdict = report.timeline_for(&victim).expect("victim is covered");
    let truth_tl = scenario.schedule.truth(&victim);
    let matrix = DurationMatrix::of(verdict, &truth_tl);
    println!("\nvictim confusion matrix (seconds):\n{matrix}");

    assert!(
        matrix.tnr() > 0.95,
        "expected to catch nearly all outage seconds"
    );
    println!("\nquickstart OK: the outage was found from passive data alone.");
}
