//! End-to-end at the wire level: DNS packets in, outages out.
//!
//! The other examples feed the detector pre-parsed observations. This
//! one runs the full packet path: the simulator renders every arrival as
//! a real DNS query datagram (wire format, random source host in the
//! block, Zipf-popular qname); the telescope parses each packet, drops
//! malformed ones, attributes sources to /24s or /48s; and the detector
//! consumes only what the telescope produced — exactly the deployment
//! shape at a root server.
//!
//! ```text
//! cargo run --release --example packet_telescope
//! ```

use bytes::Bytes;
use passive_outage::dnswire::{CapturedPacket, Telescope};
use passive_outage::netsim::{OutageSchedule, PacketFeed};
use passive_outage::prelude::*;

fn main() {
    // Small world with one injected outage.
    let mut scenario = Scenario::quick(21);
    let victim = scenario
        .internet
        .blocks()
        .iter()
        .max_by(|a, b| a.base_rate.total_cmp(&b.base_rate))
        .expect("blocks exist")
        .prefix;
    let truth = Interval::from_secs(30_000, 36_000);
    let mut schedule = OutageSchedule::new(scenario.window());
    schedule.add(victim, truth);
    scenario.schedule = schedule;

    // Render the day's arrivals as wire-format DNS queries, with a dash
    // of garbage mixed in (real telescopes see plenty).
    let mut feed = PacketFeed::new(3);
    let mut packets: Vec<CapturedPacket> = Vec::new();
    for (i, obs) in scenario.observations().enumerate() {
        packets.push(feed.render(&obs));
        if i % 5_000 == 0 {
            packets.push(CapturedPacket {
                time: obs.time,
                src: obs.block.host(12_345),
                payload: Bytes::from_static(&[0xDE, 0xAD, 0xBE]),
            });
        }
    }
    println!(
        "captured {} datagrams (including injected garbage)",
        packets.len()
    );

    // The telescope: parse, filter, attribute.
    let mut telescope = Telescope::new();
    let observations: Vec<Observation> = telescope.observe_all(packets).collect();
    let stats = telescope.stats();
    println!(
        "telescope: {} accepted, {} dropped ({} malformed)\n",
        stats.accepted, stats.dropped, stats.malformed
    );

    // Detect from the parsed feed only.
    let detector = PassiveDetector::new(DetectorConfig::default());
    let report = detector.run_slice(&observations, scenario.window());

    let verdict = report.timeline_for(&victim).expect("victim covered");
    println!(
        "victim {victim} verdict: {} s down, truth {} s",
        verdict.down_secs(),
        truth.duration()
    );
    let matrix = DurationMatrix::of(verdict, &scenario.schedule.truth(&victim));
    println!("\nconfusion matrix (seconds):\n{matrix}");
    assert!(matrix.tnr() > 0.9, "outage must survive the packet path");

    println!("\npacket_telescope OK: wire format, parsing, and detection agree.");
}
