//! Disaster scenario: a whole AS drops off the Internet.
//!
//! The paper's motivation opens with outages from natural disasters and
//! political events — correlated failures that take down every block an
//! operator originates at once. This example stages one, then compares
//! three views of it:
//!
//! * the **passive detector** (this repo's contribution) — per-/24
//!   verdicts with packet-timestamp edges,
//! * **Trinocular**-style active probing — per-/24 but ±330 s edges,
//! * **Chocolatine**-style AS-level detection — 5-minute bins but one
//!   verdict for the whole AS.
//!
//! ```text
//! cargo run --release --example disaster_region
//! ```

use passive_outage::chocolatine::Chocolatine;
use passive_outage::netsim::{
    OutageConfig, OutageSchedule, Scenario, ScenarioConfig, TopologyConfig,
};
use passive_outage::prelude::*;
use passive_outage::trinocular::{Trinocular, TrinocularConfig};

fn main() {
    // Two simulated days: Chocolatine needs a training day.
    let scenario_config = ScenarioConfig {
        name: "disaster".into(),
        topology: TopologyConfig {
            num_as: 40,
            rate_mu: -3.5, // denser blocks so every view has signal
            ..TopologyConfig::default()
        },
        outages: OutageConfig::default(),
        window_secs: 2 * durations::DAY,
        seed: 1234,
    };
    let mut scenario = Scenario::build(scenario_config);

    // The "hurricane": pick the AS with the most blocks; its entire
    // address space goes down on day 2, 09:17–13:43.
    let victim_as = scenario
        .internet
        .ases()
        .iter()
        .max_by_key(|a| a.block_indices.len())
        .expect("world has ASes")
        .id;
    let truth = Interval::from_secs(86_400 + 33_420, 86_400 + 49_380);
    let mut schedule = OutageSchedule::new(scenario.window());
    let victim_blocks: Vec<Prefix> = scenario
        .internet
        .blocks_of_as(victim_as)
        .map(|b| b.prefix)
        .collect();
    for b in &victim_blocks {
        schedule.add(*b, truth);
    }
    scenario.schedule = schedule;
    println!(
        "disaster: {victim_as} ({} blocks) down {} → {} on day 2\n",
        victim_blocks.len(),
        truth.start,
        truth.end
    );

    let observations = scenario.collect_observations();

    // --- View 1: the passive per-block detector --------------------
    let detector = PassiveDetector::new(DetectorConfig::default());
    let report = detector.run_slice(&observations, scenario.window());
    let mut caught = 0;
    let mut edge_error_sum = 0u64;
    for b in &victim_blocks {
        if let Some(tl) = report.timeline_for(b) {
            if let Some(iv) = tl.down.iter().find(|iv| iv.overlaps(&truth)) {
                caught += 1;
                edge_error_sum += iv.start.secs().abs_diff(truth.start.secs())
                    + iv.end.secs().abs_diff(truth.end.secs());
            }
        }
    }
    println!(
        "passive detector: caught the outage on {caught}/{} blocks",
        victim_blocks.len()
    );
    if caught > 0 {
        println!(
            "  mean edge error: {} s (packet-timestamp precision)\n",
            edge_error_sum / (2 * caught as u64)
        );
    }

    // --- View 2: Trinocular active probing -------------------------
    let mut oracle = scenario.oracle();
    let trino = Trinocular::new(TrinocularConfig::default()).run(&mut oracle, &victim_blocks);
    let mut tri_caught = 0;
    let mut tri_edge_sum = 0u64;
    for b in &victim_blocks {
        if let Some(tl) = trino.timeline_for(b) {
            if let Some(iv) = tl.down.iter().find(|iv| iv.overlaps(&truth)) {
                tri_caught += 1;
                tri_edge_sum += iv.start.secs().abs_diff(truth.start.secs())
                    + iv.end.secs().abs_diff(truth.end.secs());
            }
        }
    }
    println!(
        "trinocular: caught the outage on {tri_caught}/{} blocks",
        victim_blocks.len()
    );
    if tri_caught > 0 {
        println!(
            "  mean edge error: {} s (round quantization)",
            tri_edge_sum / (2 * tri_caught as u64)
        );
    }
    println!("  probes spent: {}\n", trino.probes_sent);

    // --- View 3: Chocolatine AS-level detection --------------------
    let internet = &scenario.internet;
    let choco = Chocolatine::default().run(observations.iter().copied(), scenario.window(), |p| {
        internet.as_of(p).map(|a| a.0)
    });
    match choco.timeline_for(victim_as.0) {
        Some(tl) if tl.down_secs() > 0 => {
            let iv = tl.down.intervals()[0];
            println!(
                "chocolatine: AS-level outage {} → {} (whole {victim_as}, 5-min bins)",
                iv.start, iv.end
            );
            println!("  spatial precision: the verdict cannot say WHICH /24s were affected");
        }
        _ => println!("chocolatine: no AS-level detection (aggregate too noisy)"),
    }

    println!("\ndisaster_region OK");
}
