//! IPv6 outage report — the paper's Figure 2 as a runnable example.
//!
//! Prior outage detectors could not cover IPv6: active probing cannot
//! scan 2^128 addresses, and privacy addressing makes clients ephemeral.
//! Passive analysis sidesteps both — active addresses come to the
//! service. This example runs one simulated day of dual-stack traffic
//! and prints the per-family coverage and outage rates.
//!
//! ```text
//! cargo run --release --example ipv6_report
//! ```

use passive_outage::prelude::*;

fn main() {
    let scenario = Scenario::ipv6_day(80, 99);
    let observations = scenario.collect_observations();
    println!(
        "one day of dual-stack traffic: {} observations from {} blocks\n",
        observations.len(),
        scenario.internet.blocks().len()
    );

    let detector = PassiveDetector::new(DetectorConfig::default());
    let report = detector.run_slice(&observations, scenario.window());

    let covered: Vec<Prefix> = report
        .members
        .iter()
        .flat_map(|m| m.iter().copied())
        .collect();
    let with_outage = report.blocks_with_outage(durations::TEN_MIN);

    for family in [AddrFamily::V4, AddrFamily::V6] {
        let universe = scenario.internet.count_of(family);
        let measurable = covered.iter().filter(|p| p.family() == family).count();
        let outaged = with_outage.iter().filter(|p| p.family() == family).count();
        let rate = if measurable > 0 {
            100.0 * outaged as f64 / measurable as f64
        } else {
            0.0
        };
        println!("{family}:");
        println!("  blocks in world      : {universe}");
        println!(
            "  measurable           : {measurable} ({:.1}% of world)",
            100.0 * measurable as f64 / universe as f64
        );
        println!("  ≥1 ten-minute outage : {outaged} ({rate:.1}% of measurable)");
        println!();
    }

    // The paper's headline: IPv6's outage *rate* exceeds IPv4's even
    // though IPv4 dominates in absolute counts.
    let rate_of = |family: AddrFamily| {
        let m = covered.iter().filter(|p| p.family() == family).count();
        let o = with_outage.iter().filter(|p| p.family() == family).count();
        if m == 0 {
            0.0
        } else {
            o as f64 / m as f64
        }
    };
    let (v4, v6) = (rate_of(AddrFamily::V4), rate_of(AddrFamily::V6));
    println!(
        "outage rate: IPv6 {:.1}% vs IPv4 {:.1}% — IPv6 reliability can improve",
        100.0 * v6,
        100.0 * v4
    );

    // Show a few concrete IPv6 outage events: "the first reports of
    // IPv6 outages".
    println!("\nsample IPv6 outage events:");
    let mut shown = 0;
    for ev in report.events() {
        if ev.prefix.family() == AddrFamily::V6 && ev.duration() >= durations::TEN_MIN {
            println!("  {ev}");
            shown += 1;
            if shown == 5 {
                break;
            }
        }
    }
    if shown == 0 {
        println!("  (none at this seed)");
    }
    println!("\nipv6_report OK");
}
