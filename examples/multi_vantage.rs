//! Correlating multiple passive sources.
//!
//! The paper: "when possible, we correlate multiple signals from the same
//! region to corroborate results" and "we expect to add additional
//! passive sources to increase coverage". This example splits the world's
//! traffic between two services — each sees an independent thinning of
//! every block's queries — and shows both effects:
//!
//! * **Coverage**: blocks too sparse at either single vantage become
//!   measurable when the vantages' verdicts are combined.
//! * **Corroboration**: quorum fusion keeps outages both vantages agree
//!   on (precision) while union fusion maximizes what is seen (recall).
//!
//! ```text
//! cargo run --release --example multi_vantage
//! ```

use passive_outage::detector::fuse_timelines;
use passive_outage::prelude::*;

fn main() {
    let scenario = Scenario::quick(314);
    let window = scenario.window();

    // Two services, each seeing 40 % of every block's queries
    // (independent thinnings: together they see most, but not all).
    let a_obs: Vec<Observation> = scenario.observations_for_service("b-root", 0.4).collect();
    let b_obs: Vec<Observation> = scenario.observations_for_service("big-cdn", 0.4).collect();
    println!(
        "service A sees {} observations, service B sees {}\n",
        a_obs.len(),
        b_obs.len()
    );

    let detector = PassiveDetector::new(DetectorConfig::default());
    let report_a = detector.run_slice(&a_obs, window);
    let report_b = detector.run_slice(&b_obs, window);

    // Coverage: union of covered blocks.
    let covered_a: std::collections::HashSet<Prefix> = scenario
        .internet
        .blocks()
        .iter()
        .map(|b| b.prefix)
        .filter(|p| report_a.timeline_for(p).is_some())
        .collect();
    let covered_b: std::collections::HashSet<Prefix> = scenario
        .internet
        .blocks()
        .iter()
        .map(|b| b.prefix)
        .filter(|p| report_b.timeline_for(p).is_some())
        .collect();
    let both = covered_a.union(&covered_b).count();
    println!(
        "coverage: A alone {}, B alone {}, combined {}",
        covered_a.len(),
        covered_b.len(),
        both
    );
    assert!(both >= covered_a.len().max(covered_b.len()));

    // Accuracy of fused verdicts on blocks both services cover.
    let mut solo = DurationMatrix::default();
    let mut corroborated = DurationMatrix::default();
    let mut any_source = DurationMatrix::default();
    let mut shared = 0;
    for blk in scenario.internet.blocks() {
        let (Some(tl_a), Some(tl_b)) = (
            report_a.timeline_for(&blk.prefix),
            report_b.timeline_for(&blk.prefix),
        ) else {
            continue;
        };
        shared += 1;
        let truth = scenario.schedule.truth(&blk.prefix);
        solo += DurationMatrix::of(tl_a, &truth);
        corroborated +=
            DurationMatrix::of(&fuse_timelines(&[tl_a.clone(), tl_b.clone()], 2), &truth);
        any_source += DurationMatrix::of(&fuse_timelines(&[tl_a.clone(), tl_b.clone()], 1), &truth);
    }
    println!("\nover {shared} dual-covered blocks (vs ground truth):");
    println!(
        "  service A alone    : precision {:.4}, TNR {:.3}",
        solo.precision(),
        solo.tnr()
    );
    println!(
        "  quorum-2 (agree)   : precision {:.4}, TNR {:.3}  — fewer false outages",
        corroborated.precision(),
        corroborated.tnr()
    );
    println!(
        "  union (either)     : precision {:.4}, TNR {:.3}  — most outage time caught",
        any_source.precision(),
        any_source.tnr()
    );

    assert!(
        corroborated.fo <= solo.fo,
        "corroboration must not add false outage time"
    );
    assert!(
        any_source.tnr() >= solo.tnr() - 1e-9,
        "union must not lose outage time"
    );
    println!("\nmulti_vantage OK");
}
