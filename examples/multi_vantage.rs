//! Federating multiple passive vantages.
//!
//! The paper: "when possible, we correlate multiple signals from the same
//! region to corroborate results" and "we expect to add additional
//! passive sources to increase coverage". This example runs the
//! federation subsystem end to end — a [`VantagePlan`] shards the block
//! universe across three vantages, each [`VantageRunner`] detects on its
//! own shard in isolation, and a [`FederationRouter`] assembles the
//! per-vantage reports into one global event timeline — showing the
//! subsystem's two headline behaviours:
//!
//! * **Union equivalence**: with a disjoint partition, the fused global
//!   timeline is bit-identical to a single engine over the union stream.
//! * **Corroboration**: with overlap, quorum fusion keeps only outages
//!   the covering vantages agree on, while union fusion keeps everything
//!   any vantage saw — and every fused event says which vantages voted.
//!
//! The claims printed here are asserted for real in
//! `crates/core/tests/federation.rs`.
//!
//! ```text
//! cargo run --release --example multi_vantage
//! ```

use passive_outage::detector::{
    fuse_models, FederationRouter, FusionPolicy, VantagePlan, VantageReport, VantageRunner,
};
use passive_outage::prelude::*;

/// Run one isolated engine per vantage over its shard of the stream.
fn run_vantages(
    plan: &VantagePlan,
    observations: &[Observation],
    window: Interval,
) -> Vec<VantageReport> {
    plan.split(observations)
        .iter()
        .enumerate()
        .map(|(v, shard)| {
            let runner = VantageRunner::new(v, DetectorConfig::default()).expect("valid config");
            runner.run(shard, window).expect("valid config")
        })
        .collect()
}

fn main() {
    let scenario = Scenario::quick(314);
    let window = scenario.window();
    let observations: Vec<Observation> = scenario.collect_observations();

    // --- Union equivalence: disjoint 3-vantage split -----------------
    let plan = VantagePlan::new(3).expect("three vantages");
    println!("plan: {plan}");
    for v in 0..plan.vantages() {
        let shard: Vec<Observation> = scenario.observations_where(|p| plan.sees(v, p)).collect();
        println!("  vantage {v} ingests {} observations", shard.len());
    }

    let reports = run_vantages(&plan, &observations, window);
    let fused = FederationRouter::new(FusionPolicy::Union)
        .assemble(&reports)
        .expect("assemble");
    let single = PassiveDetector::new(DetectorConfig::default()).run_slice(&observations, window);
    assert_eq!(
        fused.outage_events(),
        single.events(),
        "disjoint union federation must match the single-vantage run"
    );
    println!(
        "\nunion equivalence: {} fused events == {} single-vantage events",
        fused.events.len(),
        single.events().len()
    );

    // --- Corroboration: overlapping coverage, quorum vs union --------
    let plan = VantagePlan::new(3)
        .expect("three vantages")
        .with_overlap(0.5)
        .expect("valid overlap");
    let reports = run_vantages(&plan, &observations, window);
    let union = FederationRouter::new(FusionPolicy::Union)
        .assemble(&reports)
        .expect("assemble");
    let quorum = FederationRouter::new(FusionPolicy::Quorum(2))
        .assemble(&reports)
        .expect("assemble");
    println!(
        "\nwith {:.0}% overlap ({} units covered twice):",
        100.0 * plan.overlap(),
        union.fused_units
    );
    println!(
        "  union    : {} events — everything any vantage saw",
        union.events.len()
    );
    println!(
        "  quorum:2 : {} events — only corroborated intervals",
        quorum.events.len()
    );
    assert!(
        quorum.events.len() <= union.events.len(),
        "quorum can only tighten the union timeline"
    );
    for g in union.events.iter().filter(|g| g.sources > 1).take(3) {
        println!(
            "  {:?} [{}, {}) seen by vantages {:?} of {} covering",
            g.event.prefix,
            g.event.interval.start.secs(),
            g.event.interval.end.secs(),
            g.vantages,
            g.sources
        );
    }

    // --- Cross-vantage model fusion ----------------------------------
    let models: Vec<LearnedModel> = plan
        .split(&observations)
        .iter()
        .enumerate()
        .map(|(v, shard)| {
            VantageRunner::new(v, DetectorConfig::default())
                .expect("valid config")
                .learn(shard, window, 1)
        })
        .collect();
    let forward = fuse_models(&models).expect("fuse");
    let mut reversed = models.clone();
    reversed.reverse();
    let backward = fuse_models(&reversed).expect("fuse");
    assert_eq!(
        forward.counts(),
        backward.counts(),
        "fusion must not depend on merge order"
    );
    println!(
        "\nfused model: {} blocks over {} hours, identical under reversed merge order",
        forward.len(),
        forward.hours()
    );
    println!("\nmulti_vantage OK");
}
