//! Explore the temporal/spatial precision ↔ coverage trade-off (Fig. 1).
//!
//! Every block gets the finest time bin its traffic supports; blocks too
//! sparse for any bin pool with siblings at coarser prefixes. This
//! example sweeps the candidate bin widths and prints the coverage curve,
//! then contrasts per-block tuning against the homogeneous
//! fixed-parameter configuration prior passive systems use.
//!
//! ```text
//! cargo run --release --example tradeoff_explorer
//! ```

use passive_outage::detector::{coverage_by_width, spatial_coverage};
use passive_outage::prelude::*;

fn main() {
    let scenario = Scenario::tradeoff(100, 5);
    let observations = scenario.collect_observations();
    let detector = PassiveDetector::new(DetectorConfig::default());
    let histories = detector.learn_histories(observations.iter().copied(), scenario.window());
    println!(
        "observed {} blocks over one day ({} arrivals)\n",
        histories.len(),
        observations.len()
    );

    // Temporal axis: coverage as bins widen.
    println!("temporal precision → coverage (IPv4):");
    println!("  {:>10} | {:>10} | coverage", "bin width", "measurable");
    for point in coverage_by_width(&histories, detector.config(), Some(AddrFamily::V4)) {
        println!(
            "  {:>8} s | {:>10} | {:>6.1}%",
            point.width,
            point.measurable,
            100.0 * point.fraction()
        );
    }

    // Spatial axis: what aggregation adds on top.
    let plan = detector.plan_units(&histories);
    let spatial = spatial_coverage(&plan);
    println!("\nspatial fallback:");
    println!("  block-level units       : {}", spatial.block_level);
    for (len, blocks) in &spatial.by_aggregate_len {
        println!("  blocks covered via /{len:<3}: {blocks}");
    }
    println!("  uncovered               : {}", spatial.uncovered);
    println!(
        "  total coverage          : {:.1}%",
        100.0 * spatial.covered_fraction()
    );

    // The ablation: one fixed 300 s bin for everyone.
    let fixed = PassiveDetector::new(DetectorConfig::fixed_width(300));
    let fixed_plan = fixed.plan_units(&histories);
    let fixed_covered: usize = fixed_plan.units.iter().map(|u| u.members.len()).sum();
    println!(
        "\nhomogeneous 300 s bins (prior-work style): {:.1}% coverage — \
         per-block tuning recovers the rest",
        100.0 * fixed_covered as f64 / histories.len() as f64
    );

    println!("\ntradeoff_explorer OK");
}
